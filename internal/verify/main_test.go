package verify

import (
	"os"
	"testing"

	"alive/internal/leakcheck"
)

// TestMain fails the package if any verification goroutine — corpus
// workers, governor watchers, the memory sampler — outlives its call.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
