package verify

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"alive/internal/faultinject"
	"alive/internal/ir"
	"alive/internal/sat"
	"alive/internal/telemetry"
)

// CorpusOptions configures RunCorpus.
type CorpusOptions struct {
	// Verify is the per-transformation configuration.
	Verify Options
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// TransformTimeout bounds each transformation's wall-clock time; it
	// tightens (never loosens) Verify.Timeout. 0 means no per-transform
	// deadline beyond Verify.Timeout and the context's.
	TransformTimeout time.Duration
	// OnResult, when non-nil, is called once per transformation in input
	// order as verdicts become available (an out-of-order completion is
	// buffered until its predecessors finish). It runs on worker
	// goroutines under a lock: keep it cheap or copy out.
	OnResult func(index int, res Result)
	// Journal, when non-nil, makes the run crash-safe: transformations
	// whose hash is already journaled are restored without re-verifying
	// (Result.Resumed), and every fresh deterministic verdict is
	// appended and fsync'd as it completes. Open with CreateJournal (new
	// run) or OpenJournal (resume).
	Journal *Journal
	// Live, when non-nil, is kept current with the run's progress —
	// per-worker current transform, queue depth, verdict tallies,
	// counter totals — for the /debug/status endpoint and the /metrics
	// series Live.Register exposes.
	Live *Live
}

// CorpusStats aggregates a corpus run.
type CorpusStats struct {
	Total     int // transformations submitted
	Completed int // transformations actually verified (not skipped or resumed)
	Valid     int
	Invalid   int
	Unknown   int // Unknown verdicts, including panics and skips
	Rejected  int
	Panics    int // Unknown verdicts with ReasonPanic
	// Cancelled counts Unknown verdicts with ReasonCancelled — work the
	// run never decided because it was interrupted, as opposed to
	// queries the solver genuinely gave up on.
	Cancelled int
	// Resumed counts verdicts restored from the journal instead of
	// re-verified.
	Resumed int
	// MemoryAborts counts verifications the memory governor stopped to
	// keep the live heap under Verify.MaxHeapBytes.
	MemoryAborts int
	// Escalations totals conflict-budget ladder retries across the
	// corpus.
	Escalations int
	// Interrupted is set when the context was cancelled or its deadline
	// expired before every transformation completed; the result slice
	// still has an entry per input (skipped ones carry ReasonCancelled).
	Interrupted bool
	Duration    time.Duration
	// Queries is the total number of solver queries issued across the
	// corpus; Counters aggregates every per-transform counter set.
	Queries  int
	Counters telemetry.Counters
	// PeakHeapBytes is the largest live-heap size observed by the
	// memory sampler while the corpus ran. It is a lower bound on the
	// true peak (spikes between samples are missed) but is stable
	// enough to track memory regressions across commits.
	PeakHeapBytes uint64
	// JournalError is the first journal append failure, if any; the
	// verdicts themselves are unaffected.
	JournalError error
}

// memSampleInterval is how often the corpus memory sampler probes the
// live heap — package-level so tests can tighten it.
var memSampleInterval = 250 * time.Millisecond

// RunCorpus verifies a corpus on a bounded worker pool. It is the
// fault-tolerant batch driver the paper's workflow needs: one
// pathological transformation can time out (TransformTimeout), crash
// (panic isolation in VerifyContext plus a worker-level backstop),
// exhaust memory (the MaxHeapBytes governor), or be cancelled (ctx)
// without taking down the run; every other verdict is still produced.
//
// Results are deterministic: results[i] is always transform ts[i]'s
// outcome, regardless of completion order, and OnResult streams them in
// input order. On interrupt the call returns promptly with partial
// results — transformations that never started carry verdict Unknown
// with ReasonCancelled (or ReasonDeadline when the context's deadline
// expired).
func RunCorpus(ctx context.Context, ts []*ir.Transform, opts CorpusOptions) ([]Result, CorpusStats) {
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) && len(ts) > 0 {
		workers = len(ts)
	}

	results := make([]Result, len(ts))
	done := make([]bool, len(ts))

	// Ordered streaming: flush advances through the done flags and emits
	// contiguous completed results.
	var mu sync.Mutex
	next := 0
	flush := func() {
		for next < len(ts) && done[next] {
			if opts.OnResult != nil {
				opts.OnResult(next, results[next])
			}
			next++
		}
	}
	complete := func(i int, r Result) {
		if opts.Journal != nil && !r.Resumed {
			opts.Journal.Append(ts[i], r)
		}
		mu.Lock()
		defer mu.Unlock()
		if done[i] {
			// Idempotent: a worker-level recover after a normal
			// completion (a fault injected in a deferred finisher) must
			// not overwrite the verdict already streamed.
			return
		}
		results[i] = r
		done[i] = true
		flush()
	}

	// Resume: restore journaled verdicts up front so the feed skips
	// them; the contiguous restored prefix streams immediately.
	resumed := 0
	skip := make([]bool, len(ts))
	if opts.Journal != nil {
		for i, t := range ts {
			if rec, ok := opts.Journal.Lookup(t); ok {
				results[i] = restoreResult(t, rec)
				done[i] = true
				skip[i] = true
				resumed++
			}
		}
		mu.Lock()
		flush()
		mu.Unlock()
	}

	vopts := opts.Verify
	if opts.TransformTimeout > 0 && (vopts.Timeout <= 0 || opts.TransformTimeout < vopts.Timeout) {
		vopts.Timeout = opts.TransformTimeout
	}

	if opts.Live != nil {
		opts.Live.begin(len(ts), workers, resumed)
	}

	// In-flight registry for the memory governor: verifications register
	// their stop flag on start (in dispatch order — seq is the "heaviest"
	// proxy: the longest-running verification has had the most time to
	// build solver state) and deregister on completion.
	var (
		imu         sync.Mutex
		inflightSeq int64
		inflight    = map[int64]*sat.StopFlag{}
		memAborts   int
	)
	if vopts.MaxHeapBytes > 0 {
		vopts.onStart = func(_ *ir.Transform, flag *sat.StopFlag) func() {
			imu.Lock()
			inflightSeq++
			id := inflightSeq
			inflight[id] = flag
			imu.Unlock()
			return func() {
				imu.Lock()
				delete(inflight, id)
				imu.Unlock()
			}
		}
	}

	// Memory sampler/governor: a coarse background probe of the live
	// heap. It always tracks the peak for the perf baseline; with a
	// budget set it also governs — when the live set stays over budget
	// even after a forced GC, it trips the earliest-started in-flight
	// verification's stop flag with StopOOM, converting a would-be
	// process OOM-kill into one structured Unknown (out-of-memory).
	var peakHeap uint64
	samplerDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		tick := time.NewTicker(memSampleInterval)
		defer tick.Stop()
		var ms runtime.MemStats
		sample := func() uint64 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
			return ms.HeapAlloc
		}
		govern := func() {
			if vopts.MaxHeapBytes == 0 || sample() <= vopts.MaxHeapBytes {
				return
			}
			// Over budget: give the collector one chance to prove the
			// pressure is garbage, not live state, before aborting work.
			runtime.GC()
			if sample() <= vopts.MaxHeapBytes {
				return
			}
			imu.Lock()
			var victim *sat.StopFlag
			var victimID int64
			for id, f := range inflight {
				if f.Stopped() {
					continue
				}
				if victim == nil || id < victimID {
					victim, victimID = f, id
				}
			}
			if victim != nil {
				victim.StopWith(sat.StopOOM)
				memAborts++
			}
			imu.Unlock()
		}
		sample()
		for {
			select {
			case <-samplerDone:
				sample()
				return
			case <-tick.C:
				govern()
			}
		}
	}()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wopts := vopts
			// Each worker gets its own telemetry track so spans from
			// concurrent transforms land on separate rows instead of
			// interleaving (Chrome-trace nesting is positional per tid).
			if wopts.Trace != nil && wopts.Track == nil {
				wopts.Track = wopts.Trace.NewTrack(fmt.Sprintf("worker-%d", worker))
			}
			for i := range jobs {
				// Worker-level backstop: VerifyContext contains panics
				// from the solving stack, but a fault in the worker loop
				// itself (the corpus-worker injection site, or a panic
				// escaping a deferred span finisher) must cost only this
				// transformation, never the pool.
				func() {
					// tallied mirrors complete()'s idempotence for the Live
					// block: a fault injected after a normal completion must
					// not double-count the transform.
					tallied := false
					defer func() {
						if r := recover(); r != nil {
							rr := Result{Transform: ts[i], Verdict: Unknown, GaveUpAssignment: -1}
							if inj, ok := faultinject.AsInjected(r); ok {
								if inj.OOM {
									rr.Reason = ReasonOOM
								} else {
									rr.Reason = ReasonInjected
								}
								rr.Err = fmt.Errorf("%s", inj)
							} else {
								rr.Reason = ReasonPanic
								rr.Err = fmt.Errorf("corpus worker panic: %v", r)
								rr.PanicStack = string(debug.Stack())
							}
							if opts.Live != nil && !tallied {
								opts.Live.finish(worker, rr)
							}
							complete(i, rr)
						}
					}()
					faultinject.Fire(faultinject.SiteCorpusWorker, nil)
					if opts.Live != nil {
						opts.Live.dispatch(worker, ts[i].Name)
					}
					// Label the goroutine so CPU-profile samples attribute
					// to the transformation being verified.
					pprof.Do(ctx, pprof.Labels("transform", ts[i].Name), func(ctx context.Context) {
						r := VerifyContext(ctx, ts[i], wopts)
						if opts.Live != nil {
							opts.Live.finish(worker, r)
							tallied = true
						}
						complete(i, r)
					})
				}()
			}
		}(w)
	}
feed:
	for i := range ts {
		if skip[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	close(samplerDone)
	<-samplerStopped

	// Fill skips (never dispatched, or dispatched results lost to a
	// cancelled feed — the latter cannot happen since workers drain the
	// channel, but the guard keeps the invariant local).
	skipReason := ReasonCancelled
	if ctx.Err() == context.DeadlineExceeded {
		skipReason = ReasonDeadline
	}
	stats := CorpusStats{Total: len(ts), Resumed: resumed}
	mu.Lock()
	for i := range results {
		if !done[i] {
			results[i] = Result{
				Transform:        ts[i],
				Verdict:          Unknown,
				Reason:           skipReason,
				GaveUpAssignment: -1,
			}
			done[i] = true
		} else if !results[i].Resumed {
			stats.Completed++
		}
	}
	flush()
	mu.Unlock()

	for _, r := range results {
		switch r.Verdict {
		case Valid:
			stats.Valid++
		case Invalid:
			stats.Invalid++
		case Rejected:
			stats.Rejected++
		default:
			stats.Unknown++
			switch r.Reason {
			case ReasonPanic:
				stats.Panics++
			case ReasonCancelled:
				stats.Cancelled++
			}
		}
		stats.Queries += r.Queries
		stats.Escalations += r.Escalations
		stats.Counters.Add(r.Counters)
	}
	imu.Lock()
	stats.MemoryAborts = memAborts
	imu.Unlock()
	stats.Interrupted = ctx.Err() != nil
	stats.Duration = time.Since(start)
	stats.PeakHeapBytes = peakHeap
	if opts.Journal != nil {
		stats.JournalError = opts.Journal.Err()
	}
	return results, stats
}
