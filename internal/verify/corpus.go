package verify

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"alive/internal/ir"
	"alive/internal/telemetry"
)

// CorpusOptions configures RunCorpus.
type CorpusOptions struct {
	// Verify is the per-transformation configuration.
	Verify Options
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// TransformTimeout bounds each transformation's wall-clock time; it
	// tightens (never loosens) Verify.Timeout. 0 means no per-transform
	// deadline beyond Verify.Timeout and the context's.
	TransformTimeout time.Duration
	// OnResult, when non-nil, is called once per transformation in input
	// order as verdicts become available (an out-of-order completion is
	// buffered until its predecessors finish). It runs on worker
	// goroutines under a lock: keep it cheap or copy out.
	OnResult func(index int, res Result)
}

// CorpusStats aggregates a corpus run.
type CorpusStats struct {
	Total     int // transformations submitted
	Completed int // transformations actually verified (not skipped)
	Valid     int
	Invalid   int
	Unknown   int // Unknown verdicts, including panics and skips
	Rejected  int
	Panics    int // Unknown verdicts with ReasonPanic
	// Interrupted is set when the context was cancelled or its deadline
	// expired before every transformation completed; the result slice
	// still has an entry per input (skipped ones carry ReasonCancelled).
	Interrupted bool
	Duration    time.Duration
	// Queries is the total number of solver queries issued across the
	// corpus; Counters aggregates every per-transform counter set.
	Queries  int
	Counters telemetry.Counters
	// PeakHeapBytes is the largest live-heap size observed by a ~250ms
	// sampler while the corpus ran. It is a lower bound on the true peak
	// (spikes between samples are missed) but is stable enough to track
	// memory regressions across commits.
	PeakHeapBytes uint64
}

// RunCorpus verifies a corpus on a bounded worker pool. It is the
// fault-tolerant batch driver the paper's workflow needs: one
// pathological transformation can time out (TransformTimeout), crash
// (panic isolation in VerifyContext), or be cancelled (ctx) without
// taking down the run; every other verdict is still produced.
//
// Results are deterministic: results[i] is always transform ts[i]'s
// outcome, regardless of completion order, and OnResult streams them in
// input order. On interrupt the call returns promptly with partial
// results — transformations that never started carry verdict Unknown
// with ReasonCancelled (or ReasonDeadline when the context's deadline
// expired).
func RunCorpus(ctx context.Context, ts []*ir.Transform, opts CorpusOptions) ([]Result, CorpusStats) {
	start := time.Now()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) && len(ts) > 0 {
		workers = len(ts)
	}

	results := make([]Result, len(ts))
	done := make([]bool, len(ts))

	// Ordered streaming: flush advances through the done flags and emits
	// contiguous completed results.
	var mu sync.Mutex
	next := 0
	flush := func() {
		for next < len(ts) && done[next] {
			if opts.OnResult != nil {
				opts.OnResult(next, results[next])
			}
			next++
		}
	}
	complete := func(i int, r Result) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = r
		done[i] = true
		flush()
	}

	vopts := opts.Verify
	if opts.TransformTimeout > 0 && (vopts.Timeout <= 0 || opts.TransformTimeout < vopts.Timeout) {
		vopts.Timeout = opts.TransformTimeout
	}

	// Peak-heap sampler: a coarse (~250ms) background probe of the live
	// heap. Cheap enough to run unconditionally and good enough to flag
	// memory regressions in the perf baseline.
	var peakHeap uint64
	samplerDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		sample := func() {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
		sample()
		for {
			select {
			case <-samplerDone:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wopts := vopts
			// Each worker gets its own telemetry track so spans from
			// concurrent transforms land on separate rows instead of
			// interleaving (Chrome-trace nesting is positional per tid).
			if wopts.Trace != nil && wopts.Track == nil {
				wopts.Track = wopts.Trace.NewTrack(fmt.Sprintf("worker-%d", worker))
			}
			for i := range jobs {
				// Label the goroutine so CPU-profile samples attribute to
				// the transformation being verified.
				pprof.Do(ctx, pprof.Labels("transform", ts[i].Name), func(ctx context.Context) {
					complete(i, VerifyContext(ctx, ts[i], wopts))
				})
			}
		}(w)
	}
feed:
	for i := range ts {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	close(samplerDone)
	<-samplerStopped

	// Fill skips (never dispatched, or dispatched results lost to a
	// cancelled feed — the latter cannot happen since workers drain the
	// channel, but the guard keeps the invariant local).
	skipReason := ReasonCancelled
	if ctx.Err() == context.DeadlineExceeded {
		skipReason = ReasonDeadline
	}
	stats := CorpusStats{Total: len(ts)}
	mu.Lock()
	for i := range results {
		if !done[i] {
			results[i] = Result{
				Transform:        ts[i],
				Verdict:          Unknown,
				Reason:           skipReason,
				GaveUpAssignment: -1,
			}
			done[i] = true
		} else {
			stats.Completed++
		}
	}
	flush()
	mu.Unlock()

	for _, r := range results {
		switch r.Verdict {
		case Valid:
			stats.Valid++
		case Invalid:
			stats.Invalid++
		case Rejected:
			stats.Rejected++
		default:
			stats.Unknown++
			if r.Reason == ReasonPanic {
				stats.Panics++
			}
		}
		stats.Queries += r.Queries
		stats.Counters.Add(r.Counters)
	}
	stats.Interrupted = ctx.Err() != nil
	stats.Duration = time.Since(start)
	stats.PeakHeapBytes = peakHeap
	return results, stats
}
