package verify

import (
	"strings"
	"testing"

	"alive/internal/parser"
)

// quick options keep unit tests fast: small widths only.
var quickOpts = Options{Widths: []int{4, 8}, MaxAssignments: 4}

func run(t *testing.T, src string, opts Options) Result {
	t.Helper()
	tr, err := parser.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Verify(tr, opts)
}

func mustValid(t *testing.T, src string, opts Options) {
	t.Helper()
	r := run(t, src, opts)
	if r.Verdict != Valid {
		msg := ""
		if r.Cex != nil {
			msg = r.Cex.String()
		}
		t.Fatalf("want valid, got %v (err=%v)\n%s", r.Verdict, r.Err, msg)
	}
}

func mustInvalid(t *testing.T, src string, opts Options) *Counterexample {
	t.Helper()
	r := run(t, src, opts)
	if r.Verdict != Invalid {
		t.Fatalf("want invalid, got %v (err=%v)", r.Verdict, r.Err)
	}
	if r.Cex == nil {
		t.Fatal("invalid result must carry a counterexample")
	}
	return r.Cex
}

// ---- Valid transformations from the paper ----

func TestIntroExampleValid(t *testing.T) {
	mustValid(t, `
%1 = xor %x, -1
%2 = add %1, C
=>
%2 = sub C-1, %x
`, quickOpts)
}

func TestIntroExampleValidAt32Bits(t *testing.T) {
	mustValid(t, `
%1 = xor i32 %x, -1
%2 = add %1, 3333
=>
%2 = sub 3332, %x
`, Options{Widths: []int{32}})
}

func TestNswIcmpTrue(t *testing.T) {
	// (x + 1 > x) folds to true under nsw (Section 2.4).
	mustValid(t, `
%1 = add nsw %x, 1
%2 = icmp sgt %1, %x
=>
%2 = true
`, quickOpts)
}

func TestNoNswIcmpInvalid(t *testing.T) {
	// Without nsw the comparison is false at x = INT_MAX.
	cex := mustInvalid(t, `
%1 = add %x, 1
%2 = icmp sgt %1, %x
=>
%2 = true
`, quickOpts)
	if cex.Kind != CexValueMismatch {
		t.Fatalf("kind = %v, want value mismatch", cex.Kind)
	}
}

func TestPaperUndefExample(t *testing.T) {
	// Section 3.1.3: select undef, -1, 0 => ashr undef, 3 at i4.
	mustValid(t, `
%r = select undef, i4 -1, 0
=>
%r = ashr undef, 3
`, quickOpts)
}

func TestUndefReverseInvalid(t *testing.T) {
	// The reverse refinement is invalid at widths where ashr produces a
	// value select cannot: none here — instead check a genuinely wrong
	// undef refinement: source picks any value, target must still match.
	cex := mustInvalid(t, `
%r = xor %x, %x
=>
%r = xor undef, %x
`, quickOpts)
	_ = cex
}

func TestUndefSourceRefinesToZero(t *testing.T) {
	// xor undef, undef can produce any value, so the compiler may pick 0.
	mustValid(t, `
%r = xor undef, undef
=>
%r = 0
`, quickOpts)
}

func TestOrWithUndefOddValues(t *testing.T) {
	// or 1, undef yields odd values; refining to 1 is allowed.
	mustValid(t, `
%r = or undef, 1
=>
%r = 1
`, quickOpts)
}

func TestFigure2Valid(t *testing.T) {
	mustValid(t, `
Pre: C1 & C2 == 0 && MaskedValueIsZero(%V, ~C1)
%t0 = or %B, %V
%t1 = and %t0, C1
%t2 = and %B, C2
%R = or %t1, %t2
=>
%R = and %t0, (C1 | C2)
`, quickOpts)
}

func TestShlAshrExampleFromSection313(t *testing.T) {
	// Pre: C1 u>= C2 ... (the paper's running example) — this one is
	// actually PR21245-adjacent but with shifts only, and is correct only
	// with the right precondition; the paper's version:
	mustValid(t, `
Pre: C1 u>= C2
%0 = shl nsw i8 %a, C1
%1 = ashr %0, C2
=>
%1 = shl nsw %a, C1-C2
`, Options{Widths: []int{8}})
}

func TestSubToAddValid(t *testing.T) {
	mustValid(t, `
%B = sub 0, %A
%C = sub %x, %B
=>
%C = add %x, %A
`, quickOpts)
}

func TestMulToShlWithoutNswValid(t *testing.T) {
	mustValid(t, `
Pre: isPowerOf2(C1)
%r = mul %x, C1
=>
%r = shl %x, log2(C1)
`, quickOpts)
}

// ---- The eight Figure 8 bugs ----

var figure8 = map[string]string{
	"PR20186": "%a = sdiv %X, C\n%r = sub 0, %a\n=>\n%r = sdiv %X, -C",
	"PR20189": "%B = sub 0, %A\n%C = sub nsw %x, %B\n=>\n%C = add nsw %x, %A",
	"PR21242": "Pre: isPowerOf2(C1)\n%r = mul nsw %x, C1\n=>\n%r = shl nsw %x, log2(C1)",
	"PR21243": "Pre: !WillNotOverflowSignedMul(C1, C2)\n%Op0 = sdiv %X, C1\n%r = sdiv %Op0, C2\n=>\n%r = 0",
	"PR21245": "Pre: C2 % (1<<C1) == 0\n%s = shl nsw %X, C1\n%r = sdiv %s, C2\n=>\n%r = sdiv %X, C2/(1<<C1)",
	"PR21255": "%Op0 = lshr %X, C1\n%r = udiv %Op0, C2\n=>\n%r = udiv %X, C2 << C1",
	"PR21256": "%Op1 = sub 0, %X\n%r = srem %Op0, %Op1\n=>\n%r = srem %Op0, %X",
	"PR21274": "Pre: isPowerOf2(%Power) && hasOneUse(%Y)\n%s = shl %Power, %A\n%Y = lshr %s, %B\n%r = udiv %X, %Y\n=>\n%sub = sub %A, %B\n%Y = shl %Power, %sub\n%r = udiv %X, %Y",
}

func TestFigure8AllInvalid(t *testing.T) {
	for name, src := range figure8 {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			r := run(t, "Name: "+name+"\n"+src, quickOpts)
			if r.Verdict != Invalid {
				t.Fatalf("%s must be invalid, got %v (err=%v)", name, r.Verdict, r.Err)
			}
		})
	}
}

func TestPR21245CounterexampleShape(t *testing.T) {
	// Figure 5: the counterexample must be a value mismatch on %r and
	// list %X, C1, C2 and the intermediate %s.
	cex := mustInvalid(t, "Name: PR21245\n"+figure8["PR21245"], Options{Widths: []int{4}})
	if cex.Kind != CexValueMismatch {
		t.Fatalf("kind = %v, want value mismatch", cex.Kind)
	}
	if cex.RootName != "%r" {
		t.Fatalf("root = %s, want %%r", cex.RootName)
	}
	s := cex.String()
	for _, needle := range []string{"Mismatch in values", "%X i4", "C1 i4", "C2 i4", "%s i4", "Source value:", "Target value:"} {
		if !strings.Contains(s, needle) {
			t.Errorf("counterexample missing %q:\n%s", needle, s)
		}
	}
}

func TestPR21256DefinednessBug(t *testing.T) {
	cex := mustInvalid(t, figure8["PR21256"], quickOpts)
	if cex.Kind != CexMoreUndefined {
		t.Fatalf("PR21256 is an undefined-behavior bug, got kind %v", cex.Kind)
	}
}

func TestPR20189PoisonBug(t *testing.T) {
	cex := mustInvalid(t, figure8["PR20189"], quickOpts)
	if cex.Kind != CexMorePoison && cex.Kind != CexValueMismatch {
		t.Fatalf("PR20189 should fail poison or value check, got %v", cex.Kind)
	}
}

// ---- Fixed versions of the Figure 8 bugs verify ----

func TestFixedPR20186(t *testing.T) {
	// Excluding C = INT_MIN and C = 1 overflow cases... the actual LLVM
	// fix guards the negation: -C must not overflow and -C != -1 UB gap.
	mustValid(t, `
Pre: C != 1 && !isSignBit(C)
%a = sdiv %X, C
%r = sub 0, %a
=>
%r = sdiv %X, -C
`, quickOpts)
}

func TestFixedPR21245(t *testing.T) {
	// Keeping 1<<C1 positive (C1 strictly below width-1) rules out the
	// sign-bit overflow that Figure 5 exposes.
	mustValid(t, `
Pre: C2 % (1<<C1) == 0 && C1 u< width(%X)-1
%s = shl nsw %X, C1
%r = sdiv %s, C2
=>
%r = sdiv %X, C2/(1<<C1)
`, Options{Widths: []int{4, 8}})
}

func TestFixedPR21256(t *testing.T) {
	// Excluding %X = -1 removes the definedness gap (target srem by -1 is
	// UB at Op0 = INT_MIN while the source srem by 1 is defined).
	mustValid(t, `
Pre: %X != -1
%Op1 = sub 0, %X
%r = srem %Op0, %Op1
=>
%r = srem %Op0, %X
`, quickOpts)
}

// ---- Verdict bookkeeping ----

func TestResultMetadata(t *testing.T) {
	r := run(t, `
%r = add %x, 0
=>
%r = %x
`, quickOpts)
	if r.Verdict != Valid {
		t.Fatalf("got %v", r.Verdict)
	}
	if r.TypeAssignments == 0 {
		t.Fatal("metadata not recorded")
	}
	// add %x, 0 simplifies to %x at construction, so every condition is
	// discharged by hash-consing without touching the solver.
	if r.Queries != 0 {
		t.Fatalf("trivially equal transform should need 0 queries, used %d", r.Queries)
	}
	if r.Duration <= 0 {
		t.Fatal("duration not recorded")
	}
	// A non-trivial valid transform does reach the solver.
	r2 := run(t, `
%1 = add %x, %y
%r = sub %1, %y
=>
%r = %x
`, Options{Widths: []int{4}})
	if r2.Verdict != Valid || r2.Queries == 0 {
		t.Fatalf("want valid with solver queries, got %v with %d", r2.Verdict, r2.Queries)
	}
}

func TestHardArithWidthCap(t *testing.T) {
	tr, err := parser.ParseOne(`
%r = mul %x, C
=>
%r = mul %x, C
`)
	if err != nil {
		t.Fatal(err)
	}
	if !hasHardArith(tr) {
		t.Fatal("mul should be classified as hard arithmetic")
	}
	r := Verify(tr, Options{Widths: []int{4, 64}, DivMulMaxWidth: 8})
	if r.Verdict != Valid {
		t.Fatalf("got %v", r.Verdict)
	}
	// Only width 4 survives the cap.
	if r.TypeAssignments != 1 {
		t.Fatalf("width cap not applied: %d assignments", r.TypeAssignments)
	}
}

func TestTrivialIdentity(t *testing.T) {
	mustValid(t, `
%r = and %x, %x
=>
%r = %x
`, quickOpts)
}

func TestDeMorgan(t *testing.T) {
	mustValid(t, `
%nx = xor %x, -1
%ny = xor %y, -1
%r = and %nx, %ny
=>
%o = or %x, %y
%r = xor %o, -1
`, quickOpts)
}

func TestInvalidSignedness(t *testing.T) {
	cex := mustInvalid(t, `
%r = lshr %x, 1
=>
%r = ashr %x, 1
`, quickOpts)
	if cex.Kind != CexValueMismatch {
		t.Fatalf("got %v", cex.Kind)
	}
}

func TestExactAttributes(t *testing.T) {
	// (x / C) * C == x under exact division.
	mustValid(t, `
%d = sdiv exact %x, C
%r = mul %d, C
=>
%r = %x
`, quickOpts)
	// Without exact it is wrong.
	mustInvalid(t, `
%d = sdiv %x, C
%r = mul %d, C
=>
%r = %x
`, quickOpts)
}

func TestSelectFold(t *testing.T) {
	mustValid(t, `
%c = icmp eq %x, %y
%r = select %c, %x, %y
=>
%r = %y
`, quickOpts)
}

func TestUnknownPredicateIsUnknown(t *testing.T) {
	r := run(t, `
Pre: totallyMadeUp(%x)
%r = add %x, 0
=>
%r = %x
`, quickOpts)
	if r.Verdict != Unknown || r.Err == nil {
		t.Fatalf("unknown predicate should yield Unknown with error, got %v (%v)", r.Verdict, r.Err)
	}
}
