package verify

import (
	"context"
	"testing"
	"time"

	"alive/internal/ir"
)

// TestMemoryGovernorAborts runs a corpus under an impossible (1-byte)
// heap budget: every verification must be cooperatively aborted with a
// structured out-of-memory Unknown — and the run itself must complete,
// which is the whole point of the governor.
func TestMemoryGovernorAborts(t *testing.T) {
	old := memSampleInterval
	memSampleInterval = time.Millisecond
	defer func() { memSampleInterval = old }()

	// Hold each verification in flight long enough for the sampler to
	// notice it.
	testHookAfterTyping = func(*ir.Transform) { time.Sleep(50 * time.Millisecond) }
	defer func() { testHookAfterTyping = nil }()

	ts := []*ir.Transform{
		simpleValid(t, "m0"), simpleValid(t, "m1"),
		simpleValid(t, "m2"), simpleValid(t, "m3"),
	}
	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:  Options{Widths: []int{4}, MaxHeapBytes: 1},
		Workers: 2,
	})
	for i, r := range results {
		if r.Verdict != Unknown || r.Reason != ReasonOOM {
			t.Fatalf("results[%d] = %v/%v, want unknown/out-of-memory", i, r.Verdict, r.Reason)
		}
	}
	if stats.MemoryAborts != len(ts) {
		t.Fatalf("MemoryAborts = %d, want %d", stats.MemoryAborts, len(ts))
	}
	if stats.Interrupted {
		t.Fatal("a governed run must not read as interrupted")
	}
}

// TestMemoryGovernorHeadroom: with generous headroom the governor never
// fires and verdicts are untouched.
func TestMemoryGovernorHeadroom(t *testing.T) {
	old := memSampleInterval
	memSampleInterval = time.Millisecond
	defer func() { memSampleInterval = old }()

	ts := []*ir.Transform{simpleValid(t, "h0"), simpleValid(t, "h1")}
	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify: Options{Widths: []int{4}, MaxHeapBytes: 1 << 40},
	})
	if stats.MemoryAborts != 0 {
		t.Fatalf("MemoryAborts = %d under a 1TiB budget", stats.MemoryAborts)
	}
	for i, r := range results {
		if r.Verdict != Valid {
			t.Fatalf("results[%d] = %v, want valid", i, r.Verdict)
		}
	}
}
