package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"alive/internal/ir"
	"alive/internal/solver"
	"alive/internal/telemetry"
)

func eventsNamed(evs []telemetry.Event, name string) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range evs {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

func eventsInCat(evs []telemetry.Event, cat string) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range evs {
		if ev.Cat == cat {
			out = append(out, ev)
		}
	}
	return out
}

func eventAttr(ev telemetry.Event, key string) (any, bool) {
	for _, a := range ev.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return nil, false
}

// contains reports whether inner's interval lies within outer's.
func contains(outer, inner telemetry.Event) bool {
	return outer.Start <= inner.Start && inner.Start+inner.Dur <= outer.Start+outer.Dur
}

// TestPipelineSpans verifies one transformation with a tracer attached
// and checks that every pipeline phase produced a span nested inside
// the transform span.
func TestPipelineSpans(t *testing.T) {
	tr := parseOne(t, "Name: span-probe\n%1 = and %x, %y\n%2 = or %x, %y\n%r = add %1, %2\n=>\n%r = add %x, %y\n")
	tracer := telemetry.New()
	res := VerifyContext(context.Background(), tr, Options{
		Widths: []int{8},
		Lint:   true,
		Trace:  tracer,
	})
	if res.Verdict != Valid {
		t.Fatalf("verdict = %v, want valid", res.Verdict)
	}
	evs := tracer.Events()

	roots := eventsInCat(evs, "transform")
	if len(roots) != 1 {
		t.Fatalf("transform spans = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "span-probe" {
		t.Errorf("transform span name = %q", root.Name)
	}
	if v, ok := eventAttr(root, "verdict"); !ok || v != "valid" {
		t.Errorf("transform span verdict attr = %v, %v", v, ok)
	}
	if _, ok := eventAttr(root, "propagations"); !ok {
		t.Error("transform span missing counter annotations")
	}

	// Every phase of the pipeline must have left at least one span, all
	// nested inside the transform span on the same track.
	for _, phase := range []string{"lint", "typing", "assignment", "vcgen", "smt-check", "presolve", "bitblast", "preprocess", "cdcl"} {
		phased := eventsInCat(evs, phaseCat(phase))
		named := eventsNamed(phased, phase)
		if len(named) == 0 {
			t.Errorf("no %q span recorded", phase)
			continue
		}
		for _, ev := range named {
			if ev.Track != root.Track {
				t.Errorf("%s span on track %d, transform on %d", phase, ev.Track, root.Track)
			}
			if !contains(root, ev) {
				t.Errorf("%s span [%v,+%v] escapes transform span [%v,+%v]",
					phase, ev.Start, ev.Dur, root.Start, root.Dur)
			}
		}
	}
	// Condition spans are named check:<condition>.
	var checks []telemetry.Event
	for _, ev := range eventsInCat(evs, "condition") {
		if strings.HasPrefix(ev.Name, "check:") {
			checks = append(checks, ev)
		}
	}
	if len(checks) == 0 {
		t.Error("no condition check spans recorded")
	}
	if res.Queries != len(checks) {
		t.Errorf("condition spans = %d, result queries = %d", len(checks), res.Queries)
	}
}

func phaseCat(phase string) string {
	switch phase {
	case "smt-check":
		return "solver"
	case "cdcl":
		return "sat"
	}
	return phase
}

// TestCorpusSpansParallel runs the parallel driver with a tracer and
// checks the per-worker track discipline: every transformation gets
// exactly one root span, root spans on one track never overlap, and
// every child span is contained in some root on its track. Run under
// -race this also exercises concurrent span recording.
func TestCorpusSpansParallel(t *testing.T) {
	srcs := []string{
		"Name: t0\n%r = add %x, 0\n=>\n%r = %x\n",
		"Name: t1\n%r = and %x, %x\n=>\n%r = %x\n",
		"Name: t2\n%r = or %x, 0\n=>\n%r = %x\n",
		"Name: t3\n%r = xor %x, 0\n=>\n%r = %x\n",
		"Name: t4\n%r = mul %x, 1\n=>\n%r = %x\n",
		"Name: t5\n%r = sub %x, 0\n=>\n%r = %x\n",
		"Name: t6\n%1 = add %x, %y\n%r = sub %1, %y\n=>\n%r = %x\n",
		"Name: t7\n%r = shl %x, 0\n=>\n%r = %x\n",
	}
	var ts []*ir.Transform
	for _, s := range srcs {
		ts = append(ts, parseOne(t, s))
	}
	tracer := telemetry.New()
	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:  Options{Widths: []int{4, 8}, Trace: tracer},
		Workers: 4,
	})
	if stats.Completed != len(ts) {
		t.Fatalf("completed = %d, want %d", stats.Completed, len(ts))
	}
	if stats.Counters.IsZero() {
		t.Fatal("corpus stats counters all zero")
	}
	var want telemetry.Counters
	for _, r := range results {
		want.Add(r.Counters)
	}
	if stats.Counters != want {
		t.Fatalf("aggregate counters %+v != sum of per-result counters %+v", stats.Counters, want)
	}

	evs := tracer.Events()
	roots := eventsInCat(evs, "transform")
	if len(roots) != len(ts) {
		t.Fatalf("transform spans = %d, want %d", len(roots), len(ts))
	}
	seen := map[string]bool{}
	byTrack := map[int][]telemetry.Event{}
	for _, r := range roots {
		seen[r.Name] = true
		byTrack[r.Track] = append(byTrack[r.Track], r)
	}
	for i := range srcs {
		name := ts[i].Name
		if !seen[name] {
			t.Errorf("no root span for %s", name)
		}
	}
	// Roots on one track must not overlap (workers run one transform at
	// a time), and children must nest inside a root on the same track.
	for track, rs := range byTrack {
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				a, b := rs[i], rs[j]
				if a.Start < b.Start+b.Dur && b.Start < a.Start+a.Dur {
					t.Errorf("track %d: root spans %q and %q overlap", track, a.Name, b.Name)
				}
			}
		}
	}
	for _, ev := range evs {
		if ev.Cat == "transform" {
			continue
		}
		ok := false
		for _, r := range byTrack[ev.Track] {
			if contains(r, ev) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("span %s/%s on track %d not contained in any transform span", ev.Cat, ev.Name, ev.Track)
		}
	}
}

// TestUnknownReasonSpanAnnotations crafts one scenario per UnknownReason
// and checks the reason string lands on the transform span.
func TestUnknownReasonSpanAnnotations(t *testing.T) {
	simple := "%r = add %x, 0\n=>\n%r = %x\n"
	hard32 := "%1 = and %x, %y\n%2 = or %x, %y\n%r = add %1, %2\n=>\n%r = add %x, %y\n"
	// Valid refinement (source undef absorbs any target choice) whose
	// CEGIS needs more than the single round the hook allows.
	undefCEGIS := "%r = add undef, %x\n=>\n%r = undef\n"

	cases := []struct {
		reason UnknownReason
		src    string
		opts   Options
		setup  func(t *testing.T) (ctx context.Context, teardown func())
	}{
		{
			reason: ReasonCancelled,
			src:    hardTransform,
			opts:   hardOpts,
			setup: func(t *testing.T) (context.Context, func()) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx, func() {}
			},
		},
		{
			reason: ReasonDeadline,
			src:    hardTransform,
			opts: func() Options {
				o := hardOpts
				o.Timeout = 30 * time.Millisecond
				return o
			}(),
		},
		{
			reason: ReasonConflictBudget,
			src:    hard32,
			opts:   Options{Widths: []int{32}, MaxConflicts: 1},
		},
		{
			reason: ReasonEncoding,
			src:    "Pre: totallyMadeUp(%x)\n" + simple,
			opts:   Options{Widths: []int{4}},
		},
		{
			reason: ReasonPanic,
			src:    simple,
			opts:   Options{Widths: []int{4}},
			setup: func(t *testing.T) (context.Context, func()) {
				testHookAfterTyping = func(*ir.Transform) { panic("injected for telemetry") }
				return context.Background(), func() { testHookAfterTyping = nil }
			},
		},
		{
			reason: ReasonCEGISRounds,
			src:    undefCEGIS,
			opts:   Options{Widths: []int{4}, MaxAssignments: 1},
			setup: func(t *testing.T) (context.Context, func()) {
				testHookSolver = func(s *solver.Solver) { s.MaxRounds = 1 }
				return context.Background(), func() { testHookSolver = nil }
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.reason.String(), func(t *testing.T) {
			ctx := context.Background()
			if tc.setup != nil {
				var teardown func()
				ctx, teardown = tc.setup(t)
				defer teardown()
			}
			tracer := telemetry.New()
			opts := tc.opts
			opts.Trace = tracer
			tr := parseOne(t, tc.src)
			res := VerifyContext(ctx, tr, opts)
			if res.Verdict != Unknown || res.Reason != tc.reason {
				t.Fatalf("got %v/%v, want unknown/%v", res.Verdict, res.Reason, tc.reason)
			}
			roots := eventsInCat(tracer.Events(), "transform")
			if len(roots) != 1 {
				t.Fatalf("transform spans = %d, want 1", len(roots))
			}
			got, ok := eventAttr(roots[0], "unknown_reason")
			if !ok {
				t.Fatal("transform span has no unknown_reason annotation")
			}
			if got != tc.reason.String() {
				t.Fatalf("unknown_reason = %v, want %q", got, tc.reason.String())
			}
		})
	}
}

// TestSummaryAndNDJSON checks the corpus digest: record shape, slowest
// ordering, and that the NDJSON stream round-trips as JSON.
func TestSummaryAndNDJSON(t *testing.T) {
	var ts []*ir.Transform
	for _, s := range []string{
		"Name: quick\n%r = add %x, 0\n=>\n%r = %x\n",
		"Name: quicker\n%r = and %x, %x\n=>\n%r = %x\n",
	} {
		ts = append(ts, parseOne(t, s))
	}
	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:  Options{Widths: []int{8}},
		Workers: 2,
	})
	sum := Summarize(results, stats)
	if len(sum.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(sum.Records))
	}
	if sum.SolveTime.N != 2 {
		t.Fatalf("solve-time histogram N = %d, want 2", sum.SolveTime.N)
	}
	slow := sum.Slowest(5)
	if len(slow) != 2 {
		t.Fatalf("slowest = %d entries, want 2", len(slow))
	}
	if slow[0].DurationUS < slow[1].DurationUS {
		t.Error("slowest not sorted descending")
	}

	var buf bytes.Buffer
	if err := sum.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		for _, key := range []string{"name", "verdict", "duration_us", "counters"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("NDJSON record missing %q", key)
			}
		}
	}

	var rbuf bytes.Buffer
	sum.Render(&rbuf, 5)
	out := rbuf.String()
	for _, want := range []string{"verification telemetry", "slowest transformations", "per-transform wall time"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q", want)
		}
	}
}

// TestResultCountersWithoutTracer checks satellite requirement 6: the
// counters flow through Result with no tracer attached.
func TestResultCountersWithoutTracer(t *testing.T) {
	tr := parseOne(t, "%1 = and %x, %y\n%2 = or %x, %y\n%r = add %1, %2\n=>\n%r = add %x, %y\n")
	res := Verify(tr, Options{Widths: []int{8}})
	if res.Verdict != Valid {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if res.Counters.CDCLRuns == 0 || res.Counters.Propagations == 0 {
		t.Fatalf("solver counters empty without tracer: %+v", res.Counters)
	}
	if res.Counters.Checks == 0 {
		t.Fatal("check counter empty")
	}
}
