package verify

import (
	"context"
	"sync/atomic"
	"time"

	"alive/internal/sat"
	"alive/internal/solver"
)

// UnknownReason classifies why a verification gave up with Unknown — the
// structured survivability record that lets a corpus driver distinguish
// "this query needs a bigger budget" from "this transformation crashed
// the verifier".
type UnknownReason int

// Unknown reasons.
const (
	// ReasonNone: the verdict is not Unknown.
	ReasonNone UnknownReason = iota
	// ReasonConflictBudget: a SAT search exhausted Options.MaxConflicts
	// (and the escalation ladder, if a deadline enabled it, ran dry).
	ReasonConflictBudget
	// ReasonDeadline: the wall-clock deadline (Options.Timeout or the
	// context's deadline) expired mid-verification.
	ReasonDeadline
	// ReasonCancelled: the context was cancelled (Ctrl-C, corpus
	// shutdown) before the verdict was reached.
	ReasonCancelled
	// ReasonCEGISRounds: the exists-forall engine hit its refinement
	// round cap without converging.
	ReasonCEGISRounds
	// ReasonEncoding: typing or verification-condition encoding does not
	// support the transformation; Result.Err has the detail.
	ReasonEncoding
	// ReasonPanic: a panic inside typing/vcgen/smt/sat was recovered;
	// Result.PanicStack carries the stack trace.
	ReasonPanic
	// ReasonOOM: the corpus memory governor aborted this verification to
	// keep the live heap under CorpusOptions MaxHeapBytes, or a simulated
	// allocation failure was injected.
	ReasonOOM
	// ReasonInjected: a fault-injection site fired (chaos builds only);
	// the verdict is Unknown by construction, never a wrong Valid/Invalid.
	ReasonInjected
)

func (r UnknownReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonConflictBudget:
		return "conflict-budget"
	case ReasonDeadline:
		return "deadline"
	case ReasonCancelled:
		return "cancelled"
	case ReasonCEGISRounds:
		return "cegis-rounds"
	case ReasonEncoding:
		return "encoding-unsupported"
	case ReasonPanic:
		return "internal-panic"
	case ReasonOOM:
		return "out-of-memory"
	case ReasonInjected:
		return "injected-fault"
	}
	return "unknown-reason"
}

// governor owns the per-verification resource budget: it watches the
// context and the wall-clock deadline from a single goroutine and trips
// the shared stop flag, recording why, so every layer of the solving
// stack (verify loop, CEGIS engine, bit-blaster, CDCL core) winds down
// from one signal.
type governor struct {
	flag     sat.StopFlag
	why      atomic.Int32 // UnknownReason; written before flag trips
	deadline time.Time    // zero when no deadline applies
	quit     chan struct{}
}

// newGovernor builds a governor for ctx plus an optional relative
// timeout. The returned release function must be called (deferred) to
// reclaim the watcher goroutine; no goroutine is spawned when neither a
// deadline nor a cancellable context is involved, keeping plain Verify
// calls allocation-light.
func newGovernor(ctx context.Context, timeout time.Duration) (*governor, func()) {
	g := &governor{}
	hasDeadline := false
	if timeout > 0 {
		g.deadline = time.Now().Add(timeout)
		hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!hasDeadline || d.Before(g.deadline)) {
		g.deadline = d
		hasDeadline = true
	}
	if ctx.Done() == nil && !hasDeadline {
		return g, func() {}
	}

	g.quit = make(chan struct{})
	var timerC <-chan time.Time
	var timer *time.Timer
	if hasDeadline {
		timer = time.NewTimer(time.Until(g.deadline))
		timerC = timer.C
	}
	go func() {
		select {
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded {
				g.trip(ReasonDeadline)
			} else {
				g.trip(ReasonCancelled)
			}
		case <-timerC:
			g.trip(ReasonDeadline)
		case <-g.quit:
		}
	}()
	release := func() {
		close(g.quit)
		if timer != nil {
			timer.Stop()
		}
	}
	return g, release
}

// trip records why and raises the stop flag (in that order, so a reader
// that observes the flag always sees the reason).
func (g *governor) trip(why UnknownReason) {
	g.why.Store(int32(why))
	g.flag.Stop()
}

// stopped reports whether the governor tripped.
func (g *governor) stopped() bool { return g.flag.Stopped() }

// reason returns what tripped the governor. The governor's own watcher
// records why before tripping; when the flag was tripped from outside
// (memory governor, fault injection) the stop cause classifies it, with
// ReasonCancelled as the safe default for a plain external Stop.
func (g *governor) reason() UnknownReason {
	if r := UnknownReason(g.why.Load()); r != ReasonNone {
		return r
	}
	switch g.flag.Cause() {
	case sat.StopOOM:
		return ReasonOOM
	case sat.StopInjected:
		return ReasonInjected
	case sat.StopInjectedDeadline:
		return ReasonDeadline
	}
	return ReasonCancelled
}

// timeLeft reports whether wall-clock budget remains (always true
// without a deadline).
func (g *governor) timeLeft() bool {
	if g.stopped() {
		return false
	}
	return g.deadline.IsZero() || time.Now().Before(g.deadline)
}

// hasDeadline reports whether a wall-clock deadline governs this run —
// the condition under which the conflict-budget escalation ladder is
// enabled.
func (g *governor) hasDeadline() bool { return !g.deadline.IsZero() }

// mapCause translates a solver-level Unknown cause into the verifier's
// reason taxonomy, consulting the governor for what tripped the stop.
func (g *governor) mapCause(c solver.UnknownCause) UnknownReason {
	switch c {
	case solver.CauseStopped:
		return g.reason()
	case solver.CauseRounds:
		return ReasonCEGISRounds
	default:
		return ReasonConflictBudget
	}
}
