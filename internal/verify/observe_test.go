package verify

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alive/internal/metrics"
	"alive/internal/parser"
)

// readFlight parses one flight artifact into its header and sample
// records.
func readFlight(t *testing.T, path string) (metrics.FlightHeader, []metrics.SolverSample) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open artifact: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("empty artifact")
	}
	var hdr metrics.FlightHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	var samples []metrics.SolverSample
	for sc.Scan() {
		var rec struct {
			Type string `json:"type"`
			metrics.SolverSample
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("sample: %v", err)
		}
		if rec.Type != "sample" {
			t.Fatalf("record type = %q, want sample", rec.Type)
		}
		samples = append(samples, rec.SolverSample)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return hdr, samples
}

// TestFlightArtifactOnDeadline is the acceptance path: a verification
// that dies on its deadline must leave an NDJSON artifact whose header
// names the give-up point and which retains at least one solver
// sample from the ring.
func TestFlightArtifactOnDeadline(t *testing.T) {
	tr := parseOne(t, hardTransform)
	// Escalate the deadline until the artifact has at least one solver
	// sample: under -race the pipeline slows enough that 150ms can
	// expire before CDCL reaches its first sample point.
	var names []string
	for _, timeout := range []time.Duration{150 * time.Millisecond, 600 * time.Millisecond, 2400 * time.Millisecond} {
		dir := t.TempDir()
		opts := hardOpts
		opts.Timeout = timeout
		opts.Flight = &metrics.FlightRecorder{Dir: dir}
		res := VerifyContext(context.Background(), tr, opts)
		if res.Verdict != Unknown || res.Reason != ReasonDeadline {
			t.Fatalf("got %v/%v, want unknown/deadline", res.Verdict, res.Reason)
		}
		if res.Err != nil {
			t.Fatalf("artifact write failed: %v", res.Err)
		}
		var err error
		names, err = filepath.Glob(filepath.Join(dir, "flight-*.ndjson"))
		if err != nil || len(names) != 1 {
			t.Fatalf("artifacts = %v (err %v), want exactly one", names, err)
		}
		if _, samples := readFlight(t, names[0]); len(samples) > 0 {
			break
		}
	}
	if base := filepath.Base(names[0]); !strings.HasPrefix(base, "flight-000001-hard") {
		t.Fatalf("artifact name = %q", base)
	}

	hdr, samples := readFlight(t, names[0])
	if hdr.Type != "flight" || hdr.Schema != metrics.FlightSchema {
		t.Fatalf("header type/schema = %q/%d", hdr.Type, hdr.Schema)
	}
	if hdr.Transform != "hard" || hdr.Verdict != "unknown" || hdr.Reason != "deadline" || hdr.Trigger != "unknown" {
		t.Fatalf("header identity = %+v", hdr)
	}
	if hdr.DurationUS <= 0 {
		t.Fatalf("duration_us = %d", hdr.DurationUS)
	}
	if !strings.HasPrefix(hdr.SpanPath, "transform/assignment[") || !strings.Contains(hdr.SpanPath, "/check:") {
		t.Fatalf("span_path = %q, want transform/assignment[i]/check:cond", hdr.SpanPath)
	}
	if hdr.GaveUpAssignment == "" || hdr.GaveUpCondition == "" {
		t.Fatalf("give-up point missing: %+v", hdr)
	}
	if len(hdr.Counters) < 30 {
		t.Fatalf("counters in header = %d, want the full block", len(hdr.Counters))
	}
	if len(samples) == 0 {
		t.Fatal("no solver samples retained — the OnSample hook never fired")
	}
	if hdr.SamplesKept != len(samples) || hdr.SamplesTotal < int64(len(samples)) {
		t.Fatalf("sample tallies kept=%d total=%d, files has %d", hdr.SamplesKept, hdr.SamplesTotal, len(samples))
	}
	last := samples[len(samples)-1]
	if last.ElapsedUS <= 0 {
		t.Fatalf("last sample elapsed_us = %d", last.ElapsedUS)
	}
	if last.Vars == 0 || last.Clauses == 0 {
		t.Fatalf("last sample has no formula shape: %+v", last)
	}
	if last.Condition == "" {
		t.Fatal("sample condition not recorded")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].ElapsedUS < samples[i-1].ElapsedUS {
			t.Fatalf("samples out of order at %d: %d < %d", i, samples[i].ElapsedUS, samples[i-1].ElapsedUS)
		}
	}
}

// TestFlightSlowTrigger records a perfectly healthy verification when
// the Slow threshold is set to zero-ish, and stays quiet when the
// recorder is absent.
func TestFlightSlowTrigger(t *testing.T) {
	dir := t.TempDir()
	tr := parseOne(t, "%r = add %x, 0\n=>\n%r = %x\n")
	res := VerifyContext(context.Background(), tr, Options{
		Widths: []int{8},
		Flight: &metrics.FlightRecorder{Dir: dir, Slow: time.Nanosecond},
	})
	if res.Verdict != Valid {
		t.Fatalf("verdict = %v, want valid", res.Verdict)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "flight-*.ndjson"))
	if len(names) != 1 {
		t.Fatalf("artifacts = %v, want one slow-trigger artifact", names)
	}
	hdr, _ := readFlight(t, names[0])
	if hdr.Trigger != "slow" || hdr.Verdict != "valid" {
		t.Fatalf("header = %+v, want slow/valid", hdr)
	}

	// Valid verdict, no Slow threshold: no artifact.
	quiet := t.TempDir()
	VerifyContext(context.Background(), tr, Options{
		Widths: []int{8},
		Flight: &metrics.FlightRecorder{Dir: quiet},
	})
	if names, _ := filepath.Glob(filepath.Join(quiet, "flight-*.ndjson")); len(names) != 0 {
		t.Fatalf("unexpected artifacts %v for a valid verdict", names)
	}
}

// TestSolverGaugesLive checks that a verification with a registry set
// publishes the solver gauge set and that a real search moves them.
func TestSolverGaugesLive(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := parseOne(t, hardTransform)
	// Escalate the deadline until the search has provably started:
	// under -race the pipeline slows enough that 150ms can expire
	// before CDCL reaches its first restart-boundary sample.
	for _, timeout := range []time.Duration{150 * time.Millisecond, 600 * time.Millisecond, 2400 * time.Millisecond} {
		opts := hardOpts
		opts.Timeout = timeout
		opts.Metrics = reg
		res := VerifyContext(context.Background(), tr, opts)
		if res.Verdict != Unknown {
			t.Fatalf("verdict = %v, want unknown", res.Verdict)
		}
		if reg.Gauge("alive_solver_propagations", "").Value() != 0 {
			break
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	for _, name := range []string{
		"alive_solver_conflicts", "alive_solver_propagations", "alive_solver_decisions",
		"alive_solver_restarts", "alive_solver_learnts", "alive_solver_learnt_core",
		"alive_solver_learnt_tier2", "alive_solver_trail_depth",
		"alive_solver_recent_lbd_x100", "alive_solver_trail_ema_x100",
	} {
		if !strings.Contains(text, name+" ") {
			t.Fatalf("series %s missing from scrape:\n%s", name, text)
		}
	}
	// The deadline fired mid-search, so the last sample must show work.
	if g := reg.Gauge("alive_solver_propagations", ""); g.Value() == 0 {
		t.Fatal("propagation gauge never moved")
	}
}

// TestLiveCorpusStatus drives a small corpus with a Live block attached
// and checks the snapshot tallies, the registered series, and the
// ≥30-series floor of the /metrics surface.
func TestLiveCorpusStatus(t *testing.T) {
	src := `
Name: ok1
%r = add %x, 0
=>
%r = %x

Name: ok2
%r = and %x, %x
=>
%r = %x

Name: bad
%r = add %x, 1
=>
%r = %x
`
	ts, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse corpus: %v", err)
	}
	live := NewLive()
	reg := metrics.NewRegistry()
	live.Register(reg)

	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:  Options{Widths: []int{4}},
		Workers: 2,
		Live:    live,
	})
	if len(results) != 3 || stats.Valid != 2 || stats.Invalid != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	snap := live.Snapshot()
	if snap.Total != 3 || snap.Completed != 3 || snap.QueueDepth != 0 {
		t.Fatalf("snapshot progress = %+v", snap)
	}
	if snap.Valid != 2 || snap.Invalid != 1 || snap.Unknown != 0 {
		t.Fatalf("snapshot verdicts = %+v", snap)
	}
	if snap.Workers != 2 || len(snap.InFlight) != 0 {
		t.Fatalf("snapshot workers = %+v", snap)
	}
	if snap.Queries == 0 {
		t.Fatal("no queries tallied")
	}
	if b, err := json.Marshal(snap); err != nil || !strings.Contains(string(b), `"queue_depth":0`) {
		t.Fatalf("snapshot JSON = %s (%v)", b, err)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	series := 0
	for _, line := range strings.Split(text, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 30 {
		t.Fatalf("scrape has %d series, want >= 30:\n%s", series, text)
	}
	for _, want := range []string{
		"alive_corpus_total 3", "alive_corpus_completed 3", "alive_corpus_valid 2",
		"alive_corpus_invalid 1", "alive_corpus_queue_depth 0", "alive_corpus_workers 2",
		"alive_checks", "alive_verify_us_count 3", "alive_process_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestLiveDispatchFinish exercises the in-flight map directly.
func TestLiveDispatchFinish(t *testing.T) {
	l := NewLive()
	l.begin(5, 2, 1)
	l.dispatch(0, "alpha")
	l.dispatch(1, "")
	snap := l.Snapshot()
	if len(snap.InFlight) != 2 {
		t.Fatalf("in-flight = %+v", snap.InFlight)
	}
	if snap.InFlight[0].Worker != 0 || snap.InFlight[0].Transform != "alpha" {
		t.Fatalf("worker 0 = %+v", snap.InFlight[0])
	}
	if snap.InFlight[1].Transform != "(unnamed)" {
		t.Fatalf("worker 1 = %+v", snap.InFlight[1])
	}
	if snap.Completed != 1 || snap.Resumed != 1 || snap.QueueDepth != 4 {
		t.Fatalf("begin tallies = %+v", snap)
	}
	l.finish(0, Result{Verdict: Valid, Queries: 3, Duration: time.Millisecond})
	snap = l.Snapshot()
	if len(snap.InFlight) != 1 || snap.Valid != 1 || snap.Completed != 2 || snap.Queries != 3 {
		t.Fatalf("after finish = %+v", snap)
	}
}
