package verify

import (
	"context"
	"runtime"
	"testing"
	"time"

	"alive/internal/ir"
	"alive/internal/parser"
	"alive/internal/suite"
)

func parseNamed(t *testing.T, name, src string) *ir.Transform {
	t.Helper()
	tr, err := parser.ParseOne(src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	tr.Name = name
	return tr
}

func simpleValid(t *testing.T, name string) *ir.Transform {
	return parseNamed(t, name, "%r = and %x, %x\n=>\n%r = %x\n")
}

func TestRunCorpusOrderingAndStats(t *testing.T) {
	ts := []*ir.Transform{
		simpleValid(t, "v0"),
		parseNamed(t, "bug", "%r = lshr %x, 1\n=>\n%r = ashr %x, 1\n"),
		simpleValid(t, "v1"),
		simpleValid(t, "v2"),
	}
	var seen []int
	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:   Options{Widths: []int{4}},
		Workers:  3,
		OnResult: func(i int, r Result) { seen = append(seen, i) },
	})
	if len(results) != len(ts) {
		t.Fatalf("got %d results for %d transforms", len(results), len(ts))
	}
	for i, r := range results {
		if r.Transform != ts[i] {
			t.Fatalf("results[%d] is %q — ordering not deterministic", i, r.Transform.Name)
		}
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("OnResult order %v not the input order", seen)
		}
	}
	if results[1].Verdict != Invalid {
		t.Fatalf("bug verdict = %v, want invalid", results[1].Verdict)
	}
	if stats.Valid != 3 || stats.Invalid != 1 || stats.Unknown != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Completed != 4 || stats.Interrupted {
		t.Fatalf("stats = %+v, want 4 completed, no interrupt", stats)
	}
}

// TestRunCorpusFaultTolerance is the acceptance scenario: a corpus with
// an injected panicking transform and an injected hard query under a
// tiny deadline completes with per-transform Unknown verdicts carrying
// the right reasons — never a crash or hang.
func TestRunCorpusFaultTolerance(t *testing.T) {
	hard := parseNamed(t, "hard", hardTransform)
	ts := []*ir.Transform{
		simpleValid(t, "ok0"),
		parseNamed(t, "boom", "%r = add %x, 0\n=>\n%r = %x\n"),
		hard,
		simpleValid(t, "ok1"),
	}
	testHookAfterTyping = func(tr *ir.Transform) {
		if tr.Name == "boom" {
			panic("injected corpus fault")
		}
	}
	defer func() { testHookAfterTyping = nil }()

	results, stats := RunCorpus(context.Background(), ts, CorpusOptions{
		Verify:           Options{Widths: []int{32}, DivMulMaxWidth: -1, MaxAssignments: 1},
		TransformTimeout: 100 * time.Millisecond,
	})
	if results[0].Verdict != Valid || results[3].Verdict != Valid {
		t.Fatalf("healthy transforms: %v, %v", results[0].Verdict, results[3].Verdict)
	}
	if results[1].Verdict != Unknown || results[1].Reason != ReasonPanic {
		t.Fatalf("panicking transform: %v/%v, want unknown/internal-panic", results[1].Verdict, results[1].Reason)
	}
	if results[2].Verdict != Unknown || results[2].Reason != ReasonDeadline {
		t.Fatalf("hard transform: %v/%v, want unknown/deadline", results[2].Verdict, results[2].Reason)
	}
	if stats.Panics != 1 || stats.Unknown != 2 || stats.Valid != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Interrupted {
		t.Fatal("run must not read as interrupted")
	}
}

func TestRunCorpusInterrupt(t *testing.T) {
	// A mid-run cancellation (as a signal handler would issue) must
	// return promptly with partial results, in order, and no goroutine
	// leak.
	var ts []*ir.Transform
	for i := 0; i < 24; i++ {
		ts = append(ts, simpleValid(t, "t"+string(rune('a'+i))))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	before := runtime.NumGoroutine()
	delivered := 0
	results, stats := RunCorpus(ctx, ts, CorpusOptions{
		Verify:  Options{Widths: []int{4}},
		Workers: 2,
		OnResult: func(i int, r Result) {
			delivered++
			if delivered == 3 {
				cancel()
			}
		},
	})
	if !stats.Interrupted {
		t.Fatal("interrupted run not flagged")
	}
	if delivered != len(ts) {
		t.Fatalf("OnResult delivered %d of %d results (skips must stream too)", delivered, len(ts))
	}
	skipped := 0
	for i, r := range results {
		if r.Transform != ts[i] {
			t.Fatalf("results[%d] out of order", i)
		}
		if r.Verdict == Unknown && r.Reason == ReasonCancelled {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no transform was skipped despite the early cancel")
	}
	if stats.Completed+skipped < len(ts) {
		t.Fatalf("completed %d + skipped %d < total %d", stats.Completed, skipped, len(ts))
	}

	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before {
		t.Fatalf("goroutines: %d before, %d after — worker leak", before, after)
	}
}

func TestRunCorpusTotalDeadline(t *testing.T) {
	// A whole-run deadline marks everything still pending as deadline
	// skips.
	hard := parseNamed(t, "hard", hardTransform)
	ts := []*ir.Transform{hard, simpleValid(t, "late")}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	results, stats := RunCorpus(ctx, ts, CorpusOptions{
		Verify:  Options{Widths: []int{32}, DivMulMaxWidth: -1, MaxAssignments: 1},
		Workers: 1,
	})
	if !stats.Interrupted {
		t.Fatal("deadline run not flagged interrupted")
	}
	if results[0].Verdict != Unknown || results[0].Reason != ReasonDeadline {
		t.Fatalf("hard: %v/%v, want unknown/deadline", results[0].Verdict, results[0].Reason)
	}
	// The second may have been skipped (deadline) or squeezed in —
	// either way the run terminates promptly and the entry is present.
	if results[1].Transform != ts[1] {
		t.Fatal("partial results lost an entry")
	}
}

// TestRunCorpusParallelSpeedup checks the pool genuinely overlaps work:
// with a blocking stage injected into each verification, N workers must
// finish close to N× faster than one. (Blocking, not CPU-bound, so the
// test is meaningful on single-core runners too.)
func TestRunCorpusParallelSpeedup(t *testing.T) {
	const n, delay = 8, 40 * time.Millisecond
	var ts []*ir.Transform
	for i := 0; i < n; i++ {
		ts = append(ts, simpleValid(t, "s"+string(rune('0'+i))))
	}
	testHookAfterTyping = func(*ir.Transform) { time.Sleep(delay) }
	defer func() { testHookAfterTyping = nil }()

	opts := CorpusOptions{Verify: Options{Widths: []int{4}}, Workers: 1}
	_, seq := RunCorpus(context.Background(), ts, opts)
	opts.Workers = n
	_, par := RunCorpus(context.Background(), ts, opts)

	if par.Duration*2 > seq.Duration {
		t.Fatalf("parallel %v not ≥2x faster than sequential %v", par.Duration, seq.Duration)
	}
}

func TestRunCorpusEmptyAndSuiteSmoke(t *testing.T) {
	results, stats := RunCorpus(context.Background(), nil, CorpusOptions{})
	if len(results) != 0 || stats.Total != 0 {
		t.Fatalf("empty corpus: %v %+v", results, stats)
	}

	// A slice of real suite entries through the parallel driver agrees
	// with the sequential verifier.
	entries := suite.All()[:6]
	var ts []*ir.Transform
	for _, e := range entries {
		ts = append(ts, e.Parse())
	}
	opts := Options{Widths: []int{4}, MaxAssignments: 2}
	par, _ := RunCorpus(context.Background(), ts, CorpusOptions{Verify: opts})
	for i, tr := range ts {
		seq := Verify(tr, opts)
		if par[i].Verdict != seq.Verdict {
			t.Fatalf("%s: parallel %v != sequential %v", entries[i].Name, par[i].Verdict, seq.Verdict)
		}
	}
}
