package verify

import (
	"sort"
	"sync"
	"time"

	"alive/internal/metrics"
	"alive/internal/telemetry"
)

// Live is the mutable run status behind the debug server: RunCorpus
// updates it as work dispatches and completes, the /debug/status
// handler snapshots it as JSON, and Register exposes its tallies,
// queue depth, per-worker verification-time histograms (merged at
// scrape), and running counter totals as /metrics series. One Live
// serves one RunCorpus call at a time; all methods are safe for
// concurrent use.
type Live struct {
	mu         sync.Mutex
	total      int
	workers    int
	completed  int
	valid      int
	invalid    int
	unknown    int
	rejected   int
	resumed    int
	queries    int
	escalation int
	current    map[int]workerState
	counters   telemetry.Counters
	// verifyUS holds per-worker histograms of verification wall time in
	// microseconds; scrapes Merge them into one run-wide histogram.
	verifyUS []telemetry.Histogram
}

type workerState struct {
	name  string
	since time.Time
}

// NewLive returns an empty status block.
func NewLive() *Live {
	return &Live{current: map[int]workerState{}}
}

// begin records the run shape: total transforms, pool size, and how
// many verdicts the journal restored up front.
func (l *Live) begin(total, workers, resumed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total = total
	l.workers = workers
	l.resumed = resumed
	l.completed = resumed
}

// dispatch marks worker as verifying the named transform.
func (l *Live) dispatch(worker int, name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if name == "" {
		name = "(unnamed)"
	}
	l.current[worker] = workerState{name: name, since: time.Now()}
}

// finish folds one completed verification into the tallies.
func (l *Live) finish(worker int, res Result) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.current, worker)
	l.completed++
	switch res.Verdict {
	case Valid:
		l.valid++
	case Invalid:
		l.invalid++
	case Rejected:
		l.rejected++
	default:
		l.unknown++
	}
	l.queries += res.Queries
	l.escalation += res.Escalations
	l.counters.Add(res.Counters)
	for len(l.verifyUS) <= worker {
		l.verifyUS = append(l.verifyUS, telemetry.Histogram{})
	}
	l.verifyUS[worker].Observe(res.Duration.Microseconds())
}

// WorkerStatus is one in-flight verification in a status snapshot.
type WorkerStatus struct {
	Worker    int    `json:"worker"`
	Transform string `json:"transform"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// LiveSnapshot is the /debug/status JSON body.
type LiveSnapshot struct {
	Total       int            `json:"total"`
	Completed   int            `json:"completed"`
	QueueDepth  int            `json:"queue_depth"`
	Workers     int            `json:"workers"`
	Valid       int            `json:"valid"`
	Invalid     int            `json:"invalid"`
	Unknown     int            `json:"unknown"`
	Rejected    int            `json:"rejected"`
	Resumed     int            `json:"resumed"`
	Queries     int            `json:"queries"`
	Escalations int            `json:"escalations"`
	InFlight    []WorkerStatus `json:"in_flight"`
}

// Snapshot returns a point-in-time copy for the status endpoint.
func (l *Live) Snapshot() LiveSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LiveSnapshot{
		Total:       l.total,
		Completed:   l.completed,
		QueueDepth:  l.total - l.completed,
		Workers:     l.workers,
		Valid:       l.valid,
		Invalid:     l.invalid,
		Unknown:     l.unknown,
		Rejected:    l.rejected,
		Resumed:     l.resumed,
		Queries:     l.queries,
		Escalations: l.escalation,
	}
	now := time.Now()
	for w, st := range l.current {
		s.InFlight = append(s.InFlight, WorkerStatus{
			Worker:    w,
			Transform: st.name,
			ElapsedMS: now.Sub(st.since).Milliseconds(),
		})
	}
	sort.Slice(s.InFlight, func(i, j int) bool { return s.InFlight[i].Worker < s.InFlight[j].Worker })
	return s
}

// gauge reads one tally under the lock — the GaugeFunc shape Register
// needs.
func (l *Live) gauge(f func(*Live) int) func() int64 {
	return func() int64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return int64(f(l))
	}
}

// Register exposes the run status on reg: corpus progress gauges, the
// merged per-worker verification-time histogram, and the 32-field
// pipeline counter block (one series per counter). Together with the
// solver sample gauges (record.go) and process gauges this is the
// /metrics surface.
func (l *Live) Register(reg *metrics.Registry) {
	reg.GaugeFunc("alive_corpus_total", "Transformations submitted to the run.", l.gauge(func(l *Live) int { return l.total }))
	reg.GaugeFunc("alive_corpus_completed", "Transformations with a verdict (including resumed).", l.gauge(func(l *Live) int { return l.completed }))
	reg.GaugeFunc("alive_corpus_queue_depth", "Transformations not yet decided.", l.gauge(func(l *Live) int { return l.total - l.completed }))
	reg.GaugeFunc("alive_corpus_workers", "Worker-pool size.", l.gauge(func(l *Live) int { return l.workers }))
	reg.GaugeFunc("alive_corpus_in_flight", "Verifications running right now.", l.gauge(func(l *Live) int { return len(l.current) }))
	reg.GaugeFunc("alive_corpus_valid", "Valid verdicts so far.", l.gauge(func(l *Live) int { return l.valid }))
	reg.GaugeFunc("alive_corpus_invalid", "Invalid verdicts so far.", l.gauge(func(l *Live) int { return l.invalid }))
	reg.GaugeFunc("alive_corpus_unknown", "Unknown verdicts so far.", l.gauge(func(l *Live) int { return l.unknown }))
	reg.GaugeFunc("alive_corpus_rejected", "Rejected (lint) verdicts so far.", l.gauge(func(l *Live) int { return l.rejected }))
	reg.GaugeFunc("alive_corpus_resumed", "Verdicts restored from the resume journal.", l.gauge(func(l *Live) int { return l.resumed }))
	reg.GaugeFunc("alive_corpus_queries", "Solver queries issued so far.", l.gauge(func(l *Live) int { return l.queries }))
	reg.GaugeFunc("alive_corpus_escalations", "Conflict-budget ladder retries so far.", l.gauge(func(l *Live) int { return l.escalation }))
	reg.HistogramFunc("alive_verify_us", "Per-transformation verification wall time (µs), merged across workers.", func() telemetry.Histogram {
		l.mu.Lock()
		defer l.mu.Unlock()
		var merged telemetry.Histogram
		for i := range l.verifyUS {
			merged.Merge(l.verifyUS[i])
		}
		return merged
	})
	reg.CountersFunc("alive", "Pipeline counter totals over completed verifications.", func() telemetry.Counters {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.counters
	})
	reg.RegisterProcessMetrics("alive_process")
}
