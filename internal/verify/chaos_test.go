//go:build chaos

// The chaos suite: drives the fault-injection framework
// (internal/faultinject, `go test -tags chaos`) over seeded random
// schedules and a per-site × per-kind matrix, asserting the pipeline's
// failure contract:
//
//   - the corpus run always completes — no deadlock, no hang;
//   - no goroutine outlives its run (leakcheck, per seed and globally);
//   - every injected fault surfaces as a structured Unknown whose
//     UnknownReason matches the fault kind — never a crash, never a
//     silently wrong verdict;
//   - transformations a fault did not touch produce verdicts
//     bit-identical to a fault-free run.
package verify

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"alive/internal/faultinject"
	"alive/internal/ir"
	"alive/internal/leakcheck"
	"alive/internal/parser"
	"alive/internal/telemetry"
)

// chaosSources is a cheap, diverse corpus: valid and invalid
// transformations, multi-instruction chains, hard-arith ops, and
// undef-in-source transforms that engage the CEGIS engine (so the
// cegis-round site is reachable).
var chaosSources = []struct{ name, src string }{
	{"and-self", "%r = and %x, %x\n=>\n%r = %x\n"},
	{"add-zero", "%r = add %x, 0\n=>\n%r = %x\n"},
	{"or-self", "%r = or %x, %x\n=>\n%r = %x\n"},
	{"xor-self", "%r = xor %x, %x\n=>\n%r = 0\n"},
	{"sub-zero", "%r = sub %x, 0\n=>\n%r = %x\n"},
	{"mul-two", "%r = mul %x, 2\n=>\n%r = shl %x, 1\n"},
	{"bad-shift", "%r = lshr %x, 1\n=>\n%r = ashr %x, 1\n"},
	{"negate", "%1 = xor %x, -1\n%2 = add %1, 1\n=>\n%2 = sub 0, %x\n"},
	{"undef-select", "%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3\n"},
	{"undef-xor", "%r = xor undef, undef\n=>\n%r = 0\n"},
	{"undef-or", "%r = or undef, 1\n=>\n%r = 1\n"},
	{"shl-one", "%r = shl %x, 1\n=>\n%r = add %x, %x\n"},
	{"and-zero", "%r = and %x, 0\n=>\n%r = 0\n"},
	{"or-ones", "%r = or %x, -1\n=>\n%r = -1\n"},
	{"xor-zero", "%r = xor %x, 0\n=>\n%r = %x\n"},
	{"sub-self", "%r = sub %x, %x\n=>\n%r = 0\n"},
	{"add-self", "%r = add %x, %x\n=>\n%r = shl %x, 1\n"},
	{"div-one", "%r = sdiv %x, 1\n=>\n%r = %x\n"},
	{"lshr-zero", "%r = lshr %x, 0\n=>\n%r = %x\n"},
	{"mul-zero", "%r = mul %x, 0\n=>\n%r = 0\n"},
}

func chaosCorpus(t testing.TB) []*ir.Transform {
	t.Helper()
	var ts []*ir.Transform
	for _, s := range chaosSources {
		tr, err := parser.ParseOne(s.src)
		if err != nil {
			t.Fatalf("parse %s: %v", s.name, err)
		}
		tr.Name = s.name
		ts = append(ts, tr)
	}
	return ts
}

// runChaos executes the corpus with a tracer attached (so the
// telemetry-sink site is live) on a small worker pool.
func runChaos(ts []*ir.Transform) ([]Result, CorpusStats) {
	return RunCorpus(context.Background(), ts, CorpusOptions{
		// InprocessConflicts 1 forces inprocessing at every restart so the
		// cdcl-inprocess site is reachable even on this tiny corpus.
		Verify:  Options{Widths: []int{4, 8}, MaxAssignments: 2, Trace: telemetry.New(), InprocessConflicts: 1},
		Workers: 4,
	})
}

// chaosBaseline runs the corpus fault-free.
func chaosBaseline(ts []*ir.Transform) []Result {
	faultinject.Deactivate()
	results, _ := runChaos(ts)
	return results
}

// allowedReasons maps the faults that actually fired to the Unknown
// reasons they are permitted to surface as.
func allowedReasons(fired []faultinject.Fault) map[UnknownReason]bool {
	m := map[UnknownReason]bool{}
	for _, f := range fired {
		switch f.Kind {
		case faultinject.KindPanic, faultinject.KindStop:
			m[ReasonInjected] = true
		case faultinject.KindOOM:
			m[ReasonOOM] = true
		case faultinject.KindDeadline:
			m[ReasonDeadline] = true
		}
	}
	return m
}

// checkChaosInvariants asserts the failure contract for one schedule.
func checkChaosInvariants(t *testing.T, label string, ts []*ir.Transform, baseline, results []Result, stats CorpusStats, plan *faultinject.Plan) {
	t.Helper()
	fired := plan.Fired()
	allowed := allowedReasons(fired)
	disruptive := len(allowed) > 0 // at least one non-delay fault fired

	if stats.Interrupted {
		t.Errorf("%s: uncancelled run reads as interrupted", label)
	}
	unknowns := 0
	for i, r := range results {
		if r.Verdict == Unknown {
			unknowns++
			if !allowed[r.Reason] {
				t.Errorf("%s: %s: Unknown(%v) not justified by fired faults %v",
					label, ts[i].Name, r.Reason, fired)
			}
			continue
		}
		// Untouched verdicts must be bit-identical to the fault-free run.
		b := baseline[i]
		if r.Verdict != b.Verdict || r.Queries != b.Queries || r.TypeAssignments != b.TypeAssignments {
			t.Errorf("%s: %s: %v/%dq/%da differs from fault-free %v/%dq/%da",
				label, ts[i].Name, r.Verdict, r.Queries, r.TypeAssignments,
				b.Verdict, b.Queries, b.TypeAssignments)
		}
		if r.Verdict == Invalid && b.Cex != nil && (r.Cex == nil || r.Cex.String() != b.Cex.String()) {
			t.Errorf("%s: %s: counterexample drifted under faults", label, ts[i].Name)
		}
	}
	if disruptive && unknowns == 0 {
		t.Errorf("%s: faults fired (%v) but no structured Unknown surfaced", label, fired)
	}
	if !disruptive && unknowns != 0 {
		t.Errorf("%s: %d Unknowns with no disruptive fault fired (%v)", label, unknowns, fired)
	}
	if stats.Unknown != unknowns {
		t.Errorf("%s: stats.Unknown=%d but %d Unknown results", label, stats.Unknown, unknowns)
	}
}

// TestChaosSchedules sweeps seeded random fault schedules (the
// acceptance criterion runs 100+ seeds; -short trims the sweep).
func TestChaosSchedules(t *testing.T) {
	ts := chaosCorpus(t)
	baseline := chaosBaseline(ts)
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	for seed := 1; seed <= seeds; seed++ {
		plan := faultinject.RandomPlan(uint64(seed), 1+seed%6)
		faultinject.Activate(plan)
		results, stats := runChaos(ts)
		faultinject.Deactivate()
		checkChaosInvariants(t, fmt.Sprintf("seed %d (plan %v)", seed, plan.Faults()), ts, baseline, results, stats, plan)
		if err := leakcheck.Check(2 * time.Second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if t.Failed() {
			t.FailNow() // first bad seed is the reproducer; stop there
		}
	}
}

// TestChaosSiteKindMatrix pins down each site × kind pair with a
// deterministic single-fault plan at hit 1.
func TestChaosSiteKindMatrix(t *testing.T) {
	ts := chaosCorpus(t)
	baseline := chaosBaseline(ts)
	for _, site := range faultinject.Sites() {
		if site == faultinject.SiteParser {
			continue // no parse happens inside RunCorpus; see TestChaosParserFault
		}
		kinds := []faultinject.Kind{faultinject.KindPanic, faultinject.KindOOM, faultinject.KindDelay}
		if faultinject.StopCapable(site) {
			kinds = append(kinds, faultinject.KindStop, faultinject.KindDeadline)
		}
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", site, kind), func(t *testing.T) {
				f := faultinject.Fault{Site: site, Kind: kind, Hit: 1, Delay: time.Millisecond}
				plan := faultinject.NewPlan([]faultinject.Fault{f})
				faultinject.Activate(plan)
				defer faultinject.Deactivate()
				results, stats := runChaos(ts)
				if len(plan.Fired()) == 0 {
					t.Fatalf("fault %v never fired — site unreachable on the chaos corpus", f)
				}
				checkChaosInvariants(t, f.String(), ts, baseline, results, stats, plan)
				if err := leakcheck.Check(2 * time.Second); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosParserFault: the parser's own panic recovery must turn an
// injected fault into an ordinary parse error, and only for the parse
// it was scheduled against.
func TestChaosParserFault(t *testing.T) {
	plan := faultinject.NewPlan([]faultinject.Fault{
		{Site: faultinject.SiteParser, Kind: faultinject.KindPanic, Hit: 1},
	})
	faultinject.Activate(plan)
	defer faultinject.Deactivate()

	_, err := parser.Parse("%r = and %x, %x\n=>\n%r = %x\n")
	if err == nil {
		t.Fatal("injected parser panic produced no error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Errorf("parser error %q does not read as a recovered panic", err)
	}
	if _, err := parser.Parse("%r = and %x, %x\n=>\n%r = %x\n"); err != nil {
		t.Fatalf("parse after the scheduled hit must succeed: %v", err)
	}
}

// FuzzChaos fuzzes the (seed, fault-count) schedule space with the same
// invariant checker the seeded sweep uses.
func FuzzChaos(f *testing.F) {
	f.Add(uint64(1), uint8(1))
	f.Add(uint64(42), uint8(3))
	f.Add(uint64(0xdeadbeef), uint8(6))
	ts := chaosCorpus(f)
	baseline := chaosBaseline(ts)
	f.Fuzz(func(t *testing.T, seed uint64, n uint8) {
		if n == 0 || n > 12 {
			t.Skip()
		}
		plan := faultinject.RandomPlan(seed, int(n))
		faultinject.Activate(plan)
		defer faultinject.Deactivate()
		results, stats := runChaos(ts)
		checkChaosInvariants(t, fmt.Sprintf("seed %#x n %d", seed, n), ts, baseline, results, stats, plan)
		if err := leakcheck.Check(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
}
