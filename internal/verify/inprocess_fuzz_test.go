package verify_test

import (
	"testing"

	"alive/internal/parser"
	"alive/internal/smt"
	"alive/internal/solver"
	"alive/internal/suite"
	"alive/internal/typing"
	"alive/internal/vcgen"
)

// inprocessHeavySeeds names the conflict-heaviest corpus transforms
// from the perf baseline (BENCH_verify.json): their queries restart
// often enough to exercise every inprocessing pass even at default
// schedules, and with InprocessConflicts forced low they exercise it
// hundreds of times per solve.
var inprocessHeavySeeds = map[string]bool{
	"MulDivRem:udiv-udiv-const":   true,
	"MulDivRem:srem-of-nsw-mul":   true,
	"AddSub:add-mul-factor":       true,
	"MulDivRem:sdiv-of-nsw-mul":   true,
	"MulDivRem:mul-nuw-nuw-const": true,
	"Shifts:shl-mul-combine":      true,
	"MulDivRem:mul-shl-hoist":     true,
	"MulDivRem:urem-narrow-zext":  true,
	"MulDivRem:mul-neg-rhs":       true,
	"AddSub:sub-from-zero-mul":    true,
}

// FuzzInprocess differentially checks the SAT core's in-search static
// analysis on real verification-condition encodings: for each VC-shaped
// formula the solver is run with inprocessing forced to fire at every
// restart and with inprocessing disabled. Decided statuses must agree
// (every inprocessing rewrite — vivification, learnt subsumption, root
// clause GC — preserves logical equivalence), and every Sat model must
// satisfy the formula under concrete evaluation with no reconstruction
// step in between.
func FuzzInprocess(f *testing.F) {
	for i, e := range suite.All() {
		if inprocessHeavySeeds[e.Name] || i%7 == 0 {
			f.Add(e.Text)
		}
	}
	f.Add("%r = mul i8 %x, 8\n=>\n%r = shl i8 %x, 3\n")
	f.Add("Pre: isPowerOf2(C1)\n%r = udiv %x, C1\n=>\n%r = lshr %x, log2(C1)\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := parser.ParseOne(src)
		if err != nil {
			return
		}
		asgs, err := typing.Infer(tr, typing.Options{Widths: []int{1, 4}, MaxAssignments: 2})
		if err != nil {
			return
		}
		for _, asg := range asgs {
			b := smt.NewBuilder()
			enc, err := vcgen.Encode(b, tr, asg)
			if err != nil {
				continue
			}
			se, te := enc.Src[tr.Root], enc.Tgt[tr.Root]
			conjs := append(append([]*smt.Term{}, enc.PreParts...), enc.SideCons...)
			var bodies []*smt.Term
			addBody := func(extra *smt.Term) {
				parts := append(conjs[:len(conjs):len(conjs)], extra)
				bodies = append(bodies, b.And(parts...))
			}
			if se.Val != nil && te.Val != nil {
				addBody(b.Not(b.Eq(se.Val, te.Val)))
				addBody(b.Eq(se.Val, te.Val))
			}
			if se.Def != nil && te.Def != nil {
				addBody(b.And(se.Def, b.Not(te.Def)))
			}
			for _, body := range bodies {
				run := func(disable bool) solver.Result {
					s := solver.Solver{
						MaxConflicts:     20000,
						DisableInprocess: disable,
						// Far below the default schedule, so even small VC
						// formulas hit vivification and subsumption; not so
						// low that restart-per-conflict drowns the -race
						// seed pass in inprocessing runs.
						InprocessConflicts: 50,
					}
					return s.Check(b, body)
				}
				on, off := run(false), run(true)
				if on.Status == solver.Unknown || off.Status == solver.Unknown {
					continue
				}
				if on.Status != off.Status {
					t.Fatalf("status %v with inprocessing, %v without, for body of:\n%s", on.Status, off.Status, src)
				}
				for _, leg := range []struct {
					name string
					res  solver.Result
				}{{"inprocessed", on}, {"direct", off}} {
					if leg.res.Status != solver.Sat {
						continue
					}
					if v := smt.Eval(body, leg.res.Model); !v.B {
						t.Fatalf("%s model does not satisfy the formula for:\n%s", leg.name, src)
					}
				}
			}
		}
	})
}
