package verify

import (
	"alive/internal/ir"
	"alive/internal/telemetry"
)

// startTransformSpan opens the per-transformation root span. With no
// tracer configured it returns nil and every downstream span operation
// is a nil-receiver no-op — the telemetry-off fast path.
func startTransformSpan(opts Options, t *ir.Transform) *telemetry.Span {
	track := opts.Track
	if track == nil {
		if opts.Trace == nil {
			return nil
		}
		track = opts.Trace.NewTrack("verify")
	}
	name := t.Name
	if name == "" {
		name = "(unnamed)"
	}
	return track.Start(name, "transform")
}

// finishTransformSpan annotates the root span with the final outcome —
// verdict, structured Unknown reason, give-up location, and the
// aggregated counters — and completes it. It runs after the panic
// handler, so a recovered panic is annotated too.
func finishTransformSpan(span *telemetry.Span, res *Result) {
	if span == nil {
		return
	}
	span.SetAttr("verdict", res.Verdict.String())
	if res.Verdict == Unknown {
		span.SetAttr("unknown_reason", res.Reason.String())
		if res.GaveUpAssignment >= 0 {
			span.SetInt("gave_up_assignment", int64(res.GaveUpAssignment))
		}
		if res.GaveUpCondition != "" {
			span.SetAttr("gave_up_condition", res.GaveUpCondition)
		}
	}
	if res.Err != nil {
		span.SetAttr("error", res.Err.Error())
	}
	span.SetInt("type_assignments", int64(res.TypeAssignments))
	span.SetInt("queries", int64(res.Queries))
	if res.Escalations > 0 {
		span.SetInt("escalations", int64(res.Escalations))
	}
	span.SetCounters(res.Counters)
	span.End()
}
