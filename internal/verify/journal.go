package verify

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"alive/internal/ir"
)

// Journal is a crash-safe, append-only NDJSON record of corpus verdicts.
// Each verified transformation appends one line keyed by a content hash
// of its printed form; every append is fsync'd before RunCorpus moves
// on, so a SIGKILL (or power loss) part-way through a corpus loses at
// most the verdict in flight. A later run opened on the same file
// restores the journaled verdicts and re-verifies only the rest.
//
// Only deterministic verdicts are journaled: Valid, Invalid, Rejected,
// and Unknown with reason encoding-unsupported. Budget- and
// interrupt-shaped Unknowns (deadline, conflict-budget, cancelled,
// out-of-memory, …) are re-verified on resume, since a second run with
// more headroom may well decide them.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]JournalRecord
	// needNewline is set when the existing file ends in a torn line (a
	// crash mid-append); the next record starts with a newline so the
	// torn tail can never corrupt a fresh record.
	needNewline bool
	err         error // first append/sync failure, sticky
}

// JournalRecord is one journaled verdict. CexText is stored for humans
// reading the journal; restored Invalid results do not reconstruct the
// structured counterexample.
type JournalRecord struct {
	Hash            string `json:"hash"`
	Name            string `json:"name"`
	Verdict         string `json:"verdict"`
	Reason          string `json:"reason,omitempty"`
	Queries         int    `json:"queries"`
	TypeAssignments int    `json:"assignments"`
	Escalations     int    `json:"escalations,omitempty"`
	CexText         string `json:"cex,omitempty"`
	Err             string `json:"err,omitempty"`
}

// journalHeader is the first line of every journal file: it pins the
// format and fingerprints the verification options so a resume with
// different semantics (widths, lint, simplification) is rejected
// instead of silently mixing verdicts.
type journalHeader struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	Options string `json:"options"`
}

const journalFormat = "alive-corpus"
const journalVersion = 1

// TransformHash is the journal key: a hex SHA-256 of the
// transformation's canonical printed form, so renamed files or
// reordered corpora still resume correctly.
func TransformHash(t *ir.Transform) string {
	sum := sha256.Sum256([]byte(t.String()))
	return hex.EncodeToString(sum[:])
}

// optionsFingerprint captures the Options fields that change what a
// verdict means. Budgets and deadlines are deliberately excluded: they
// only shape which runs end Unknown, and Unknowns are never journaled.
func optionsFingerprint(o Options) string {
	o = o.withDefaults()
	return fmt.Sprintf("widths=%v divmul=%d ptr=%d maxasg=%d simplify=%t lint=%t presolve=%t preprocess=%t inprocess=%t",
		o.Widths, o.DivMulMaxWidth, o.PtrWidth, o.MaxAssignments,
		!o.DisableSimplify, o.Lint, !o.DisablePresolve, !o.DisablePreprocess, !o.DisableInprocess)
}

// CreateJournal starts a fresh journal at path (truncating any existing
// file), writing and syncing the options-fingerprint header.
func CreateJournal(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, path: path, seen: map[string]JournalRecord{}}
	hdr, _ := json.Marshal(journalHeader{Journal: journalFormat, Version: journalVersion, Options: optionsFingerprint(opts)})
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal opens path for resuming: journaled verdicts become
// immediately visible through Lookup and new verdicts append after
// them. A missing file starts a fresh journal; an existing file whose
// header fingerprint disagrees with opts is refused. A torn final line
// (crash mid-append) is dropped and the file self-heals on the next
// append.
func OpenJournal(path string, opts Options) (*Journal, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return CreateJournal(path, opts)
	}
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, seen: map[string]JournalRecord{}}

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if first {
			first = false
			var hdr journalHeader
			if json.Unmarshal([]byte(line), &hdr) != nil || hdr.Journal != journalFormat {
				return nil, fmt.Errorf("journal %s: not an alive corpus journal", path)
			}
			if hdr.Version != journalVersion {
				return nil, fmt.Errorf("journal %s: version %d, this build writes %d", path, hdr.Version, journalVersion)
			}
			if want := optionsFingerprint(opts); hdr.Options != want {
				return nil, fmt.Errorf("journal %s: was written with options %q, run has %q — use a fresh journal or matching flags",
					path, hdr.Options, want)
			}
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.Hash == "" {
			// Torn or foreign line: drop it. Only a torn *tail* is
			// expected from a crash, but dropping any undecodable line
			// keeps resume total.
			continue
		}
		j.seen[rec.Hash] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal %s: %v", path, err)
	}
	if first {
		// Existing but empty file: treat as fresh.
		return CreateJournal(path, opts)
	}
	j.needNewline = len(data) > 0 && data[len(data)-1] != '\n'

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j.f = f
	return j, nil
}

// Lookup returns the journaled verdict for t, if any.
func (j *Journal) Lookup(t *ir.Transform) (JournalRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[TransformHash(t)]
	return rec, ok
}

// Len is the number of distinct journaled verdicts.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// journalable reports whether a verdict is deterministic enough to
// skip on resume.
func journalable(r Result) bool {
	switch r.Verdict {
	case Valid, Invalid, Rejected:
		return true
	case Unknown:
		return r.Reason == ReasonEncoding
	}
	return false
}

// Append journals the verdict for t if it is deterministic and not
// already present. The record is written and fsync'd before Append
// returns; failures are sticky (see Err) and never abort the corpus
// run — losing the journal must not lose verdicts.
func (j *Journal) Append(t *ir.Transform, r Result) {
	if !journalable(r) {
		return
	}
	rec := JournalRecord{
		Hash:            TransformHash(t),
		Name:            t.Name,
		Verdict:         r.Verdict.String(),
		Queries:         r.Queries,
		TypeAssignments: r.TypeAssignments,
		Escalations:     r.Escalations,
	}
	if r.Reason != ReasonNone {
		rec.Reason = r.Reason.String()
	}
	if r.Cex != nil {
		rec.CexText = r.Cex.String()
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.seen[rec.Hash]; dup {
		return
	}
	j.seen[rec.Hash] = rec
	if j.f == nil || j.err != nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	if j.needNewline {
		line = append([]byte{'\n'}, line...)
		j.needNewline = false
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.err = err
		return
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
	}
}

// Err returns the first append failure (nil when the journal is
// healthy).
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file. Appends after Close are recorded
// in memory only.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	f := j.f
	j.f = nil
	if f == nil {
		return nil
	}
	return f.Close()
}

// parseVerdict inverts Verdict.String for journal restore.
func parseVerdict(s string) Verdict {
	switch s {
	case "valid":
		return Valid
	case "invalid":
		return Invalid
	case "rejected":
		return Rejected
	}
	return Unknown
}

// parseReason inverts UnknownReason.String for journal restore.
func parseReason(s string) UnknownReason {
	for r := ReasonNone; r <= ReasonInjected; r++ {
		if r.String() == s {
			return r
		}
	}
	return ReasonNone
}

// restoreResult reconstitutes a journaled verdict as a Result with
// Resumed set.
func restoreResult(t *ir.Transform, rec JournalRecord) Result {
	r := Result{
		Transform:        t,
		Verdict:          parseVerdict(rec.Verdict),
		Reason:           parseReason(rec.Reason),
		Queries:          rec.Queries,
		TypeAssignments:  rec.TypeAssignments,
		Escalations:      rec.Escalations,
		GaveUpAssignment: -1,
		Resumed:          true,
	}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	return r
}
