package verify

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"alive/internal/ir"
	"alive/internal/parser"
)

// hardTransform is valid but needs a 32-bit sdiv equivalence proof —
// far beyond any millisecond-scale deadline.
const hardTransform = `
Name: hard
Pre: C2 % (1<<C1) == 0 && C1 u< width(%X)-1
%s = shl nsw %X, C1
%r = sdiv %s, C2
=>
%r = sdiv %X, C2/(1<<C1)
`

// hardOpts disables the mul/div width cap so the proof really runs at 32
// bits.
var hardOpts = Options{Widths: []int{32}, DivMulMaxWidth: -1, MaxAssignments: 1}

func parseOne(t *testing.T, src string) *ir.Transform {
	t.Helper()
	tr, err := parser.ParseOne(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tr
}

func TestVerifyContextDeadline(t *testing.T) {
	tr := parseOne(t, hardTransform)
	opts := hardOpts
	opts.Timeout = 50 * time.Millisecond
	start := time.Now()
	res := VerifyContext(context.Background(), tr, opts)
	elapsed := time.Since(start)
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown", res.Verdict)
	}
	if res.Reason != ReasonDeadline {
		t.Fatalf("reason = %v, want deadline", res.Reason)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline verification took %v, want prompt return", elapsed)
	}
	if res.GaveUpAssignment < 0 {
		t.Fatalf("give-up assignment not recorded: %d", res.GaveUpAssignment)
	}
	if res.GaveUpCondition == "" {
		t.Fatal("give-up condition not recorded")
	}
}

func TestVerifyContextCtxDeadline(t *testing.T) {
	tr := parseOne(t, hardTransform)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res := VerifyContext(ctx, tr, hardOpts)
	if res.Verdict != Unknown || res.Reason != ReasonDeadline {
		t.Fatalf("got %v/%v, want unknown/deadline", res.Verdict, res.Reason)
	}
}

func TestVerifyContextCancelled(t *testing.T) {
	tr := parseOne(t, hardTransform)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := VerifyContext(ctx, tr, hardOpts)
	if res.Verdict != Unknown || res.Reason != ReasonCancelled {
		t.Fatalf("got %v/%v, want unknown/cancelled", res.Verdict, res.Reason)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled verification took %v", d)
	}
}

func TestVerifyContextCancelledBetweenAssignments(t *testing.T) {
	// The hook fires after typing, before the per-assignment loop: the
	// loop's entry check must observe the cancellation and record which
	// assignment it gave up on.
	tr := parseOne(t, "%r = add %x, 0\n=>\n%r = %x\n")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testHookAfterTyping = func(*ir.Transform) { cancel(); time.Sleep(20 * time.Millisecond) }
	defer func() { testHookAfterTyping = nil }()
	res := VerifyContext(ctx, tr, Options{Widths: []int{4, 8}})
	if res.Verdict != Unknown || res.Reason != ReasonCancelled {
		t.Fatalf("got %v/%v, want unknown/cancelled", res.Verdict, res.Reason)
	}
	if res.GaveUpAssignment != 0 {
		t.Fatalf("gave up at assignment %d, want 0", res.GaveUpAssignment)
	}
}

func TestPanicIsolation(t *testing.T) {
	tr := parseOne(t, "%r = add %x, 0\n=>\n%r = %x\n")
	testHookAfterTyping = func(*ir.Transform) { panic("injected fault") }
	defer func() { testHookAfterTyping = nil }()
	res := VerifyContext(context.Background(), tr, Options{Widths: []int{4}})
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %v, want unknown", res.Verdict)
	}
	if res.Reason != ReasonPanic {
		t.Fatalf("reason = %v, want internal-panic", res.Reason)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "injected fault") {
		t.Fatalf("err = %v, want the panic value", res.Err)
	}
	if !strings.Contains(res.PanicStack, "goroutine") {
		t.Fatal("panic stack not captured")
	}
	if res.Duration <= 0 {
		t.Fatal("duration not recorded on the panic path")
	}
}

func TestEscalationLadder(t *testing.T) {
	// A 1-conflict starting budget cannot prove this 32-bit identity —
	// (x&y)+(x|y) = x+y mixes bitwise atoms into the adders' carry
	// chains, so neither the ring presolve nor preprocessor probing can
	// discharge it and the SAT search really runs.
	tr := parseOne(t, "%1 = and %x, %y\n%2 = or %x, %y\n%r = add %1, %2\n=>\n%r = add %x, %y\n")
	res := VerifyContext(context.Background(), tr, Options{
		Widths:       []int{32},
		MaxConflicts: 1,
		Timeout:      time.Minute,
	})
	if res.Verdict != Valid {
		t.Fatalf("verdict = %v (reason %v), want valid via escalation", res.Verdict, res.Reason)
	}
	if res.Escalations == 0 {
		t.Fatal("proof needed more than 1 conflict, so at least one escalation was expected")
	}
}

func TestNoEscalationWithoutDeadline(t *testing.T) {
	tr := parseOne(t, "%1 = and %x, %y\n%2 = or %x, %y\n%r = add %1, %2\n=>\n%r = add %x, %y\n")
	res := VerifyContext(context.Background(), tr, Options{Widths: []int{32}, MaxConflicts: 1})
	if res.Verdict != Unknown || res.Reason != ReasonConflictBudget {
		t.Fatalf("got %v/%v, want unknown/conflict-budget", res.Verdict, res.Reason)
	}
	if res.Escalations != 0 {
		t.Fatalf("escalated %d times without a deadline", res.Escalations)
	}
}

func TestUnknownReasonStrings(t *testing.T) {
	want := map[UnknownReason]string{
		ReasonNone:           "none",
		ReasonConflictBudget: "conflict-budget",
		ReasonDeadline:       "deadline",
		ReasonCancelled:      "cancelled",
		ReasonCEGISRounds:    "cegis-rounds",
		ReasonEncoding:       "encoding-unsupported",
		ReasonPanic:          "internal-panic",
		ReasonOOM:            "out-of-memory",
		ReasonInjected:       "injected-fault",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestEncodingReason(t *testing.T) {
	tr := parseOne(t, "Pre: totallyMadeUp(%x)\n%r = add %x, 0\n=>\n%r = %x\n")
	res := Verify(tr, Options{Widths: []int{4}})
	if res.Verdict != Unknown || res.Reason != ReasonEncoding {
		t.Fatalf("got %v/%v, want unknown/encoding-unsupported", res.Verdict, res.Reason)
	}
}

// TestVerifyContextNoGoroutineLeak drives many governed verifications
// and checks the goroutine count settles back to the baseline.
func TestVerifyContextNoGoroutineLeak(t *testing.T) {
	tr := parseOne(t, "%r = and %x, %x\n=>\n%r = %x\n")
	hard := parseOne(t, hardTransform)
	before := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		VerifyContext(ctx, tr, Options{Widths: []int{4}, Timeout: time.Second})
		cancel()
	}
	for i := 0; i < 4; i++ {
		o := hardOpts
		o.Timeout = 10 * time.Millisecond
		VerifyContext(context.Background(), hard, o)
	}
	var after int
	for i := 0; i < 100; i++ { // allow watchers a moment to drain
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after — watcher leak", before, after)
}
