package verify_test

import (
	"testing"

	"alive/internal/parser"
	"alive/internal/smt"
	"alive/internal/solver"
	"alive/internal/suite"
	"alive/internal/typing"
	"alive/internal/vcgen"
)

// FuzzIncremental differentially checks the assumption-based session
// layer on real verification-condition encodings: every VC body of a
// type assignment is solved twice, once through one persistent
// incremental session (queries as assumption flips over a shared core
// and bit-blaster — exactly what verifyOne does per assignment) and
// once with a fresh solver per query. Decided statuses must agree (a
// retired query's guarded clauses can never constrain a later query),
// and every Sat model must satisfy its formula under concrete
// evaluation — the session extracts models without reconstruction, so
// a frozen-variable leak in the incremental CNF preprocessor shows up
// here as an invalid model.
func FuzzIncremental(f *testing.F) {
	for i, e := range suite.All() {
		if inprocessHeavySeeds[e.Name] || i%7 == 0 {
			f.Add(e.Text)
		}
	}
	f.Add("%r = mul i8 %x, 8\n=>\n%r = shl i8 %x, 3\n")
	f.Add("Pre: isPowerOf2(C1)\n%r = udiv %x, C1\n=>\n%r = lshr %x, log2(C1)\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := parser.ParseOne(src)
		if err != nil {
			return
		}
		asgs, err := typing.Infer(tr, typing.Options{Widths: []int{1, 4}, MaxAssignments: 2})
		if err != nil {
			return
		}
		for _, asg := range asgs {
			b := smt.NewBuilder()
			enc, err := vcgen.Encode(b, tr, asg)
			if err != nil {
				continue
			}
			se, te := enc.Src[tr.Root], enc.Tgt[tr.Root]
			conjs := append(append([]*smt.Term{}, enc.PreParts...), enc.SideCons...)
			type query struct {
				body  *smt.Term
				miter bool
			}
			var bodies []query
			addBody := func(extra *smt.Term, miter bool) {
				parts := append(conjs[:len(conjs):len(conjs)], extra)
				bodies = append(bodies, query{b.And(parts...), miter})
			}
			if se.Val != nil && te.Val != nil {
				addBody(b.Not(b.Eq(se.Val, te.Val)), true)
				addBody(b.Eq(se.Val, te.Val), false)
			}
			if se.Def != nil && te.Def != nil {
				addBody(b.And(se.Def, b.Not(te.Def)), false)
			}
			// One session answers the whole query stream, like verifyOne
			// does for the conditions of a type assignment — value
			// disequalities marked as miters so bit-slicing is covered.
			sess := solver.Solver{MaxConflicts: 20000, Incremental: true}
			for _, q := range bodies {
				body := q.body
				sess.Miter = q.miter
				inc := sess.Check(b, body)
				fresh := solver.Solver{MaxConflicts: 20000}
				dir := fresh.Check(b, body)
				if inc.Status == solver.Unknown || dir.Status == solver.Unknown {
					continue
				}
				if inc.Status != dir.Status {
					t.Fatalf("status %v incremental, %v fresh-solver, for body of:\n%s", inc.Status, dir.Status, src)
				}
				for _, leg := range []struct {
					name string
					res  solver.Result
				}{{"incremental", inc}, {"fresh", dir}} {
					if leg.res.Status != solver.Sat {
						continue
					}
					if v := smt.Eval(body, leg.res.Model); !v.B {
						t.Fatalf("%s model does not satisfy the formula for:\n%s", leg.name, src)
					}
				}
			}
		}
	})
}
