package sat

// SampleStats is a point-in-time snapshot of the search internals,
// delivered through Solver.OnSample at restart boundaries and on
// Unknown exits. It is a plain value struct — the SAT core neither
// knows nor cares what the observability layer does with it — and every
// field is integral so consumers can feed gauges and NDJSON records
// without float plumbing; the two quality signals that are naturally
// fractional are carried as fixed-point ×100.
type SampleStats struct {
	// Cumulative search totals for this core (across all Solve calls in
	// an incremental session).
	Conflicts    int64
	Propagations int64
	Decisions    int64
	Restarts     int64
	Learned      int64

	// Clause-database shape at the sample instant: total learnts and
	// the permanent/mid tiers of the LBD-tiered policy (the remainder is
	// the local reduction pool), plus problem size.
	Learnts     int
	LearntCore  int
	LearntTier2 int
	Vars        int
	Clauses     int

	// Search-quality signals: the current trail depth, the mean LBD of
	// the recent-learnt ring ×100 (0 when the ring is empty), and the
	// trail-size EMA at conflicts ×100 — the same signals the
	// Glucose-style restart policy reads.
	Trail         int
	RecentLBDx100 int64
	TrailEMAx100  int64
}

// sampleStats builds a snapshot. Only called when OnSample is non-nil,
// so the tier scan over the learnt database costs nothing on the
// sampling-off path.
func (s *Solver) sampleStats() SampleStats {
	st := SampleStats{
		Conflicts:    s.conflicts,
		Propagations: s.propagations,
		Decisions:    s.decisions,
		Restarts:     s.restarts,
		Learned:      s.learned,
		Learnts:      len(s.learnts),
		Vars:         len(s.vars) - 1,
		Clauses:      len(s.clauses),
		Trail:        len(s.trail),
		TrailEMAx100: int64(s.trailEma * 100),
	}
	for _, c := range s.learnts {
		switch c.tier {
		case tierCore:
			st.LearntCore++
		case tierTwo:
			st.LearntTier2++
		}
	}
	if s.lbdRingLen > 0 {
		st.RecentLBDx100 = s.lbdRingSum * 100 / int64(s.lbdRingLen)
	}
	return st
}

// emitSample fires the OnSample hook if one is attached.
func (s *Solver) emitSample() {
	if s.OnSample != nil {
		s.OnSample(s.sampleStats())
	}
}
