package sat

// This file is the shared subsumption core used by both the CNF
// preprocessor (internal/cnf, between bit-blasting and search) and the
// solver's own inprocessing (inprocess.go, during search): 64-bit
// clause signatures as a subset pre-filter, plus the literal-level
// subsumption and self-subsumption predicates. It lives here rather
// than in internal/cnf because cnf already imports sat — factoring the
// core downward is what lets both layers share one implementation.

// LitSig returns the one-bit bloom signature of a literal.
func LitSig(l Lit) uint64 { return 1 << (uint32(l) % 64) }

// ComputeSig returns the 64-bit signature of a clause: the union of its
// literal signatures. sig(C) &^ sig(D) != 0 proves C ⊄ D, so most
// subsumption candidates are rejected without touching the literals.
func ComputeSig(lits []Lit) uint64 {
	var s uint64
	for _, l := range lits {
		s |= LitSig(l)
	}
	return s
}

// ContainsLit reports whether lits contains l.
func ContainsLit(lits []Lit, l Lit) bool {
	for _, x := range lits {
		if x == l {
			return true
		}
	}
	return false
}

// Subsumes reports c ⊆ d.
func Subsumes(c, d []Lit) bool {
	for _, l := range c {
		if !ContainsLit(d, l) {
			return false
		}
	}
	return true
}

// Strengthens reports (c \ {l}) ∪ {¬l} ⊆ d: resolving c and d on l
// yields a clause that subsumes d, so ¬l can be removed from d
// (self-subsuming resolution).
func Strengthens(c []Lit, l Lit, d []Lit) bool {
	for _, x := range c {
		if x == l {
			x = x.Not()
		}
		if !ContainsLit(d, x) {
			return false
		}
	}
	return true
}
