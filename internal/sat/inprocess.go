package sat

import "alive/internal/faultinject"

// This file is the in-search static-analysis half of the clause
// database machinery ("inprocessing"): at restart boundaries — the
// trail is at decision level 0, so every rewrite below is a root-level
// fact — the solver
//
//  1. saturates pending root units through the database, deleting
//     satisfied clauses and stripping false literals (clause garbage
//     collection),
//  2. runs backward subsumption and self-subsuming strengthening of
//     the learnts discovered since the last run against the whole
//     database, reusing the signature/subsumption core shared with
//     internal/cnf (subsume.go), and
//  3. vivifies (distills) problem and learnt clauses: assuming the
//     negation of a clause prefix and unit-propagating either shortens
//     the clause or proves literals redundant.
//
// Every rewrite preserves logical equivalence — not merely
// equisatisfiability — so models stay exact and a run can stop at any
// point (tick budget exhausted, StopFlag tripped) leaving a correct
// solver state behind.

const (
	// defaultInprocessInterval is the number of conflicts between
	// inprocessing runs.
	defaultInprocessInterval = 2000
	// defaultInprocessBudget bounds one run, in ticks (roughly one per
	// literal visited or propagation performed).
	defaultInprocessBudget = 250_000
	// maxNewLearnts caps the subsumption queue so a conflict storm
	// cannot make one inprocessing run quadratic.
	maxNewLearnts = 20_000
	// vivifyMinLen skips vivification of clauses already at the minimum
	// useful length (binary clauses cannot shrink without becoming
	// units, which saturation and probing find more cheaply).
	vivifyMinLen = 3
)

// inprocessInterval returns the conflicts-between-runs schedule.
func (s *Solver) inprocessInterval() int64 {
	if s.InprocessConflicts > 0 {
		return s.InprocessConflicts
	}
	return defaultInprocessInterval
}

// ipSpend charges n ticks against the current run's budget.
func (s *Solver) ipSpend(n int) { s.ipTicks -= int64(n) }

// ipHalted reports whether the current run should stop: budget
// exhausted or cooperative cancellation requested.
func (s *Solver) ipHalted() bool { return s.ipTicks <= 0 || s.Stop.Stopped() }

// inprocess runs one in-search static-analysis pass over the clause
// database. Must be called at decision level 0. It returns false when
// the database was refuted at the root (the formula is unsatisfiable).
func (s *Solver) inprocess() bool {
	s.inprocessings++
	if s.OnInprocess != nil {
		if done := s.OnInprocess(); done != nil {
			defer done()
		}
	}
	faultinject.Fire(faultinject.SiteInprocess, s.Stop)
	if s.Stop.Stopped() {
		return s.ok
	}
	budget := s.InprocessBudget
	if budget <= 0 {
		budget = defaultInprocessBudget
	}
	// The optional analyses get separate budget slices: subsumption scans
	// are charged per candidate pair and would otherwise starve
	// vivification, which is where most of the simplification power is.
	s.ipTicks = budget / 4

	// Root saturation runs to completion regardless of budget: it is
	// linear in the database and rebuilding the watch lists halfway
	// would leave watches on already-processed false literals (missed
	// propagations).
	if !s.saturateRoot() {
		return false
	}
	if !s.Stop.Stopped() && !s.ipHalted() {
		if !s.subsumeNewLearnts() {
			return false
		}
	}
	if !s.Stop.Stopped() {
		s.ipTicks = budget / 2 // vivification's own slice
		if !s.vivify() {
			return false
		}
	}
	s.compactDB()
	return s.ok
}

// rootValue returns the root-level truth of l: True/False only for
// variables assigned at decision level 0.
func (s *Solver) rootValue(l Lit) Value {
	if s.vars[l.Var()].value != Unassigned && s.level(l.Var()) == 0 {
		return s.value(l)
	}
	return Unassigned
}

// saturateRoot propagates pending root units to fixpoint and rewrites
// the database against the root assignment: clauses satisfied at the
// root are deleted, false literals are stripped, and clauses that
// shrink to units are absorbed in turn. Watch lists are rebuilt from
// scratch afterwards and root reasons are cleared (a level-0
// assignment needs no reason), so reduceDB never locks on a stale
// pointer. Returns false on a root conflict.
func (s *Solver) saturateRoot() bool {
	//alive:bounded — each variable is root-assigned at most once, so the fixpoint stabilizes after at most nvars passes.
	for {
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		// Saturation is mandatory and linear; it is not charged against
		// the tick budget, which governs only the optional analyses
		// (subsumption, vivification) — otherwise a large database would
		// spend the whole budget on garbage collection and the actual
		// simplification would never run.
		changed := false
		strip := func(c *clause) bool {
			keep := c.lits[:0]
			for _, l := range c.lits {
				switch s.rootValue(l) {
				case True:
					c.deleted = true
					return true
				case False:
					changed = true
					continue
				}
				keep = append(keep, l)
			}
			if len(keep) == len(c.lits) {
				return true
			}
			c.lits = keep
			switch len(keep) {
			case 0:
				s.ok = false
				return false
			case 1:
				c.deleted = true
				if s.rootValue(keep[0]) == Unassigned {
					s.uncheckedEnqueue(keep[0], nil)
				}
			}
			return true
		}
		for _, c := range s.clauses {
			if !c.deleted && !strip(c) {
				return false
			}
		}
		for _, c := range s.learnts {
			if !c.deleted && !strip(c) {
				return false
			}
		}
		s.rebuildWatches()
		for _, l := range s.trail {
			s.vars[l.Var()].reason = nil
		}
		if !changed && s.qhead == len(s.trail) {
			return true
		}
	}
}

// rebuildWatches drops every watcher and re-attaches the live clauses.
func (s *Solver) rebuildWatches() {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.compactDB()
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
}

// compactDB removes deleted clauses from the database lists.
func (s *Solver) compactDB() {
	live := func(cs []*clause) []*clause {
		out := cs[:0]
		for _, c := range cs {
			if !c.deleted {
				out = append(out, c)
			}
		}
		return out
	}
	s.clauses = live(s.clauses)
	s.learnts = live(s.learnts)
}

// removeClause deletes an attached clause from the database.
func (s *Solver) removeClause(c *clause) {
	c.deleted = true
	s.detach(c)
}

// strengthen removes literal l from an attached clause d, keeping the
// watch lists and root assignment consistent: a strengthened clause
// that shrinks to a unit is absorbed into the root trail (the pending
// propagation is picked up by the caller's next saturation). Returns
// false on a root conflict.
func (s *Solver) strengthen(d *clause, l Lit) bool {
	s.detach(d)
	keep := d.lits[:0]
	for _, x := range d.lits {
		if x == l {
			continue
		}
		switch s.rootValue(x) {
		case True:
			// Satisfied at the root (a unit enqueued earlier in this
			// pass): delete rather than re-attach.
			d.deleted = true
			return true
		case False:
			continue
		}
		keep = append(keep, x)
	}
	d.lits = keep
	d.sig = ComputeSig(keep)
	switch len(keep) {
	case 0:
		s.ok = false
		d.deleted = true
		return false
	case 1:
		d.deleted = true
		switch s.rootValue(keep[0]) {
		case False:
			s.ok = false
			return false
		case Unassigned:
			s.uncheckedEnqueue(keep[0], nil)
		}
		return true
	}
	s.attach(d)
	return true
}

// subsumeNewLearnts screens the learnts recorded since the last run
// against the whole database: a new learnt C deletes any clause D ⊇ C
// (backward subsumption) and strengthens any D ⊇ (C \ {l}) ∪ {¬l} by
// removing ¬l (self-subsuming resolution). Occurrence lists are built
// fresh per run — the search loop itself never maintains them — and
// signatures prefilter the candidate scans. Returns false on a root
// conflict.
func (s *Solver) subsumeNewLearnts() bool {
	queue := s.newLearnts
	s.newLearnts = s.newLearnts[:0]
	if len(queue) == 0 {
		return true
	}
	occ := make([][]*clause, len(s.watches))
	index := func(cs []*clause) {
		for _, c := range cs {
			c.sig = ComputeSig(c.lits)
			for _, l := range c.lits {
				occ[l] = append(occ[l], c)
			}
			// Indexing is cheap pointer appends; charge per clause, not
			// per literal, so building the index does not consume the
			// budget the subsumption scans are supposed to live under.
			s.ipSpend(1)
		}
	}
	index(s.clauses)
	index(s.learnts)

	trailMark := len(s.trail)
	for _, c := range queue {
		if c.deleted || s.ipHalted() {
			continue
		}
		// Backward subsumption: every D ⊇ C appears in the occurrence
		// list of each literal of C; scan the cheapest.
		best := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(occ[l]) < len(occ[best]) {
				best = l
			}
		}
		for _, d := range occ[best] {
			if d == c || d.deleted || len(d.lits) < len(c.lits) {
				continue
			}
			s.ipSpend(len(c.lits))
			if c.sig&^d.sig != 0 || !ContainsLit(d.lits, best) {
				continue
			}
			if Subsumes(c.lits, d.lits) {
				s.removeClause(d)
				s.learntsSubsumed++
			}
		}
		// Self-subsuming strengthening: drop ¬l from any D where the
		// resolvent of C and D on l subsumes D.
		for _, l := range c.lits {
			if c.deleted {
				break
			}
			sigFlip := c.sig&^LitSig(l) | LitSig(l.Not())
			for _, d := range occ[l.Not()] {
				if d == c || d.deleted || len(d.lits) < len(c.lits) {
					continue
				}
				s.ipSpend(len(c.lits))
				if sigFlip&^d.sig != 0 || !ContainsLit(d.lits, l.Not()) {
					continue
				}
				if !Strengthens(c.lits, l, d.lits) {
					continue
				}
				if !s.strengthen(d, l.Not()) {
					return false
				}
			}
		}
	}
	if len(s.trail) != trailMark {
		// Strengthening produced root units: saturate before anything
		// else trusts the "no root-assigned literals in live clauses"
		// invariant.
		return s.saturateRoot()
	}
	return true
}

// vivify distills clauses by trial unit propagation: for a clause
// l₁ ∨ … ∨ lₙ it assumes ¬l₁, ¬l₂, … one literal at a time. A conflict
// or an implied lᵢ proves the prefix l₁ ∨ … ∨ lᵢ, replacing the clause;
// an implied ¬lᵢ proves lᵢ redundant and drops it. Problem clauses and
// worthwhile learnts (core and tier2) are visited round-robin across
// runs under the tick budget. Returns false on a root conflict.
func (s *Solver) vivify() bool {
	// Iterate over snapshots: vivifying one clause can derive a root
	// unit, whose saturation garbage-collects the database lists out
	// from under a live index. Deleted clauses are skipped per
	// candidate instead.
	probs := append([]*clause(nil), s.clauses...)
	if n := len(probs); n > 0 {
		if s.vivClauseCur >= n {
			s.vivClauseCur = 0
		}
		start := s.vivClauseCur
		for i := 0; i < n && !s.ipHalted(); i++ {
			ci := (start + i) % n
			s.vivClauseCur = (ci + 1) % n
			if !s.vivifyClause(probs[ci]) {
				return false
			}
		}
	}
	lrnts := append([]*clause(nil), s.learnts...)
	if n := len(lrnts); n > 0 {
		if s.vivLearntCur >= n {
			s.vivLearntCur = 0
		}
		start := s.vivLearntCur
		for i := 0; i < n && !s.ipHalted(); i++ {
			ci := (start + i) % n
			s.vivLearntCur = (ci + 1) % n
			c := lrnts[ci]
			if c.tier == tierLocal {
				continue // likely to be reduced away; not worth the ticks
			}
			if !s.vivifyClause(c) {
				return false
			}
		}
	}
	return true
}

// vivifyClause vivifies one clause. The clause is detached while its
// own literals are propagated (a clause must not help distill itself)
// and the strongest proven form is re-attached. Must be called at
// decision level 0 with no pending propagations; leaves the solver at
// level 0 with any derived root units propagated. Returns false on a
// root conflict.
func (s *Solver) vivifyClause(c *clause) bool {
	if c.deleted || len(c.lits) < vivifyMinLen {
		return true
	}
	faultinject.Fire(faultinject.SiteInprocess, s.Stop)
	if s.ipHalted() {
		return true
	}
	s.detach(c)
	lits := c.lits
	keep := make([]Lit, 0, len(lits))
	aborted := false
scan:
	for _, l := range lits {
		if s.ipHalted() {
			aborted = true
			break
		}
		switch s.rootValue(l) {
		case True:
			// Satisfied at the root: the whole clause is redundant.
			keep = append(keep, l)
			break scan
		case False:
			continue // root-false literal: strip
		}
		switch s.value(l) {
		case True:
			// ¬(prefix) implies l: the clause shrinks to prefix ∨ l.
			keep = append(keep, l)
			break scan
		case False:
			// ¬(prefix) implies ¬l: l is redundant in the clause.
			continue
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l.Not(), nil)
		before := s.propagations
		confl := s.propagate()
		s.ipSpend(int(s.propagations-before) + 1)
		if confl != nil {
			// ¬(prefix ∨ l) is contradictory: the prefix ∨ l is implied.
			keep = append(keep, l)
			break scan
		}
		keep = append(keep, l)
	}
	s.backtrackTo(0)
	if aborted || len(keep) == len(lits) {
		// Nothing proven (or the run was cut short): keep the clause as
		// it was.
		c.lits = lits
		s.attach(c)
		return true
	}
	s.clausesVivified++
	s.vivifyShrunkLits += int64(len(lits) - len(keep))
	c.lits = keep
	// A shrunk clause that retained a root-true literal is simply
	// satisfied; drop it.
	for _, l := range keep {
		if s.rootValue(l) == True {
			c.deleted = true
			return true
		}
	}
	switch len(keep) {
	case 0:
		s.ok = false
		c.deleted = true
		return false
	case 1:
		c.deleted = true
		switch s.rootValue(keep[0]) {
		case False:
			s.ok = false
			return false
		case Unassigned:
			s.uncheckedEnqueue(keep[0], nil)
		}
		// Propagate the new root unit immediately and fold its
		// consequences into the database so later candidates see a
		// saturated root state.
		return s.saturateRoot()
	}
	if c.learnt {
		if lbd := int32(len(keep)) - 1; lbd < c.lbd {
			s.setLBD(c, lbd)
		}
	}
	s.attach(c)
	return true
}
