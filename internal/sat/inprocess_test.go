package sat

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// lit converts a DIMACS-style signed int to a Lit.
func dimacs(v int) Lit {
	if v < 0 {
		return MkLit(-v, true)
	}
	return MkLit(v, false)
}

// randomInstance generates a random k-SAT instance near the phase
// transition, hard enough to force conflicts, restarts, and therefore
// inprocessing runs.
func randomInstance(rng *rand.Rand) (int, [][]int) {
	nvars := 20 + rng.Intn(40)
	nclauses := int(float64(nvars) * (3.5 + rng.Float64()))
	clauses := make([][]int, nclauses)
	for i := range clauses {
		k := 2 + rng.Intn(3)
		c := make([]int, k)
		for j := range c {
			v := 1 + rng.Intn(nvars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		clauses[i] = c
	}
	return nvars, clauses
}

func buildSolver(nvars int, clauses [][]int) (*Solver, bool) {
	s := New()
	for s.NumVars() < nvars {
		s.NewVar()
	}
	for _, c := range clauses {
		lits := make([]Lit, len(c))
		for j, v := range c {
			lits[j] = dimacs(v)
		}
		if !s.AddClause(lits...) {
			return s, false
		}
	}
	return s, true
}

func modelSatisfies(s *Solver, clauses [][]int) bool {
	for _, c := range clauses {
		sat := false
		for _, v := range c {
			val := s.ValueOf(abs(v))
			if v < 0 {
				val = !val
			}
			if val {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestInprocessSoundnessRandom runs aggressive inprocessing (every
// restart, varying budgets) against a reference solve with inprocessing
// disabled: the status must agree and Sat models must satisfy the
// original clauses exactly — every inprocessing rewrite preserves
// logical equivalence, so there is no reconstruction step to hide bugs
// behind.
func TestInprocessSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for iter := 0; iter < iters; iter++ {
		nvars, clauses := randomInstance(rng)

		ref, ok := buildSolver(nvars, clauses)
		var want Status
		if !ok {
			want = Unsat
		} else {
			ref.DisableInprocess = true
			want = ref.Solve()
		}

		s, ok := buildSolver(nvars, clauses)
		if !ok {
			continue // trivially unsat either way
		}
		s.InprocessConflicts = 1
		if iter%3 == 0 {
			s.InprocessBudget = int64(1 + rng.Intn(500))
		}
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: inprocessing status %v, reference %v (clauses %v)", iter, got, want, clauses)
		}
		if got == Sat && !modelSatisfies(s, clauses) {
			t.Fatalf("iter %d: model does not satisfy original clauses %v", iter, clauses)
		}
	}
}

// TestInprocessRuns asserts inprocessing actually fires on a hard
// instance and the verdict is still right.
func TestInprocessRuns(t *testing.T) {
	s := New()
	pigeonhole(s, 7)
	s.InprocessConflicts = 50
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) = %v, want unsat", st)
	}
	if s.Inprocessings() == 0 {
		t.Fatal("expected at least one inprocessing run")
	}
	if s.DBReductions() == 0 {
		t.Fatal("expected at least one DB reduction on PHP(8,7)")
	}
}

// TestInprocessDisabled asserts the -inprocess=off path really is off.
func TestInprocessDisabled(t *testing.T) {
	s := New()
	pigeonhole(s, 7)
	s.DisableInprocess = true
	s.InprocessConflicts = 1
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) = %v, want unsat", st)
	}
	if s.Inprocessings() != 0 || s.ClausesVivified() != 0 || s.LearntsSubsumed() != 0 {
		t.Fatalf("disabled inprocessing still ran: runs=%d vivified=%d subsumed=%d",
			s.Inprocessings(), s.ClausesVivified(), s.LearntsSubsumed())
	}
}

// TestVivifyShrinksClause checks the distillation rule on a hand-built
// case: with a → b in the database, the clause (b ∨ a ∨ c) vivifies to
// (b ∨ c) — assuming ¬b propagates ¬a, proving a redundant.
func TestVivifyShrinksClause(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false))                   // a → b
	s.AddClause(MkLit(b, false), MkLit(a, false), MkLit(c, false)) // b ∨ a ∨ c
	if !s.inprocess() {
		t.Fatal("inprocess refuted a satisfiable formula")
	}
	if s.ClausesVivified() != 1 || s.VivifyShrunkLits() != 1 {
		t.Fatalf("vivified=%d shrunk=%d, want 1/1", s.ClausesVivified(), s.VivifyShrunkLits())
	}
	var target *clause
	for _, cl := range s.clauses {
		if len(cl.lits) == 3 {
			t.Fatalf("ternary clause survived vivification: %v", cl.lits)
		}
		if ContainsLit(cl.lits, MkLit(c, false)) {
			target = cl
		}
	}
	wantLits := []Lit{MkLit(b, false), MkLit(c, false)}
	if target == nil || len(target.lits) != 2 || target.lits[0] != wantLits[0] || target.lits[1] != wantLits[1] {
		t.Fatalf("vivified clause = %v, want %v", target, wantLits)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("post-vivification solve = %v, want sat", st)
	}
}

// TestSubsumeNewLearnts checks backward subsumption and self-subsuming
// strengthening of a new learnt against the database.
func TestSubsumeNewLearnts(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	A, B, C := MkLit(a, false), MkLit(b, false), MkLit(c, false)
	s.AddClause(A, B, C)       // subsumed by the learnt {a, b}
	s.AddClause(A.Not(), B, C) // strengthened to {b, c} (resolve on a)
	lc := &clause{lits: []Lit{A, B}, learnt: true}
	s.learnts = append(s.learnts, lc)
	s.attach(lc)
	s.newLearnts = append(s.newLearnts, lc)
	s.ipTicks = 1 << 20
	if !s.subsumeNewLearnts() {
		t.Fatal("subsumption refuted a satisfiable formula")
	}
	if s.LearntsSubsumed() != 1 {
		t.Fatalf("learnts_subsumed = %d, want 1", s.LearntsSubsumed())
	}
	s.compactDB()
	if len(s.clauses) != 1 {
		t.Fatalf("%d problem clauses survive, want 1", len(s.clauses))
	}
	got := s.clauses[0].lits
	if len(got) != 2 || got[0] != B || got[1] != C {
		t.Fatalf("strengthened clause = %v, want [%v %v]", got, B, C)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("post-subsumption solve = %v, want sat", st)
	}
}

// TestStopFlagMidInprocess flips the stop flag before and at random
// points during solves that inprocess at every restart, then swaps in a
// fresh flag and re-solves the same solver: the halt must be sound — the
// rewritten database is logically equivalent to the original clauses,
// so the resumed status matches a reference solve and Sat models
// satisfy the original clauses exactly. Mirrors
// internal/cnf TestStopFlagMidPreprocess for the in-search analyses.
func TestStopFlagMidInprocess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 150
	if testing.Short() {
		iters = 30
	}
	for iter := 0; iter < iters; iter++ {
		nvars, clauses := randomInstance(rng)

		ref, ok := buildSolver(nvars, clauses)
		var want Status
		if !ok {
			want = Unsat
		} else {
			ref.DisableInprocess = true
			want = ref.Solve()
		}

		s, ok := buildSolver(nvars, clauses)
		if !ok {
			continue
		}
		s.InprocessConflicts = 1
		var flag StopFlag
		s.Stop = &flag
		var wg sync.WaitGroup
		switch iter % 3 {
		case 0:
			// Pre-tripped: Solve must return Unknown immediately.
			flag.Stop()
		case 1:
			// Concurrent flip racing the search: lands anywhere,
			// including mid-vivification.
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(rng.Intn(80)) * time.Microsecond)
				flag.Stop()
			}()
		case 2:
			// Tiny tick budget: every run halts mid-analysis
			// deterministically.
			s.InprocessBudget = int64(1 + rng.Intn(50))
		}
		st := s.Solve()
		wg.Wait()
		if iter%3 != 2 && st == Unknown && !s.Interrupted() {
			t.Fatalf("iter %d: unexpected budget Unknown", iter)
		}

		// Resume on the same (possibly mid-rewritten) solver with a fresh
		// flag: the database must still mean the same formula.
		s.Stop = &StopFlag{}
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: resumed status %v, reference %v (clauses %v)", iter, got, want, clauses)
		}
		if got == Sat && !modelSatisfies(s, clauses) {
			t.Fatalf("iter %d: resumed model does not satisfy original clauses %v", iter, clauses)
		}
	}
}

// TestInprocessIncremental makes sure inprocessing keeps the solver
// usable across incremental AddClause / Solve cycles and under
// assumptions.
func TestInprocessIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 40; iter++ {
		nvars, clauses := randomInstance(rng)
		s, ok := buildSolver(nvars, clauses)
		if !ok {
			continue
		}
		s.InprocessConflicts = 1
		first := s.Solve()
		// Add a few more clauses and re-solve; compare against a fresh
		// reference over the full set.
		extra := make([][]int, 3)
		for i := range extra {
			c := make([]int, 2)
			for j := range c {
				v := 1 + rng.Intn(nvars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			extra[i] = c
		}
		all := append(append([][]int{}, clauses...), extra...)
		ok = true
		for _, c := range extra {
			lits := make([]Lit, len(c))
			for j, v := range c {
				lits[j] = dimacs(v)
			}
			ok = s.AddClause(lits...) && ok
		}
		ref, refOK := buildSolver(nvars, all)
		var want Status
		if !refOK {
			want = Unsat
		} else {
			ref.DisableInprocess = true
			want = ref.Solve()
		}
		var got Status
		if !ok {
			got = Unsat
		} else {
			got = s.Solve()
		}
		if first == Unsat {
			want = Unsat // clauses only ever get added
		}
		if got != want {
			t.Fatalf("iter %d: incremental status %v, reference %v", iter, got, want)
		}
		if got == Sat && !modelSatisfies(s, all) {
			t.Fatalf("iter %d: incremental model wrong", iter)
		}
	}
}
