package sat

import (
	"math/rand"
	"testing"
)

// addAll adds clauses given as slices of signed ints (DIMACS style:
// positive = var, negative = negated var).
func addAll(s *Solver, maxVar int, clauses [][]int) bool {
	for s.NumVars() < maxVar {
		s.NewVar()
	}
	for _, c := range clauses {
		lits := make([]Lit, len(c))
		for i, v := range c {
			if v < 0 {
				lits[i] = MkLit(-v, true)
			} else {
				lits[i] = MkLit(v, false)
			}
		}
		if !s.AddClause(lits...) {
			return false
		}
	}
	return true
}

func TestTrivial(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(MkLit(v, false)) {
		t.Fatal("unit clause rejected")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want sat", st)
	}
	if !s.ValueOf(v) {
		t.Fatal("v should be true")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should report unsat")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve = %v, want unsat", st)
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if s.AddClause(MkLit(v, true)) {
		t.Fatal("contradictory unit should fail")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("want unsat, got %v", st)
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (x | y) & (x | ~y) & (~x | y) & (~x | ~y)
	s := New()
	ok := addAll(s, 2, [][]int{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}})
	if ok {
		if st := s.Solve(); st != Unsat {
			t.Fatalf("want unsat, got %v", st)
		}
	}
}

func TestSatWithPropagationChain(t *testing.T) {
	// Implication chain x1 -> x2 -> ... -> x10, assert x1.
	s := New()
	var cls [][]int
	for i := 1; i < 10; i++ {
		cls = append(cls, []int{-i, i + 1})
	}
	cls = append(cls, []int{1})
	if !addAll(s, 10, cls) {
		t.Fatal("clauses rejected")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("want sat, got %v", st)
	}
	for v := 1; v <= 10; v++ {
		if !s.ValueOf(v) {
			t.Fatalf("x%d should be true", v)
		}
	}
}

// pigeonhole formula PHP(n+1, n): unsat, requires real conflict analysis.
func pigeonhole(s *Solver, holes int) bool {
	pigeons := holes + 1
	varOf := func(p, h int) int { return p*holes + h + 1 }
	for s.NumVars() < pigeons*holes {
		s.NewVar()
	}
	ok := true
	// Each pigeon in some hole.
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(varOf(p, h), false)
		}
		ok = s.AddClause(lits...) && ok
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				ok = s.AddClause(MkLit(varOf(p1, h), true), MkLit(varOf(p2, h), true)) && ok
			}
		}
	}
	return ok
}

func TestPigeonhole(t *testing.T) {
	for _, holes := range []int{2, 3, 4, 5, 6} {
		s := New()
		pigeonhole(s, holes)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d+1,%d): want unsat, got %v", holes, holes, st)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a 5-cycle (possible: chromatic number 3).
	s := New()
	n, k := 5, 3
	varOf := func(node, color int) int { return node*k + color + 1 }
	for s.NumVars() < n*k {
		s.NewVar()
	}
	for v := 0; v < n; v++ {
		lits := make([]Lit, k)
		for c := 0; c < k; c++ {
			lits[c] = MkLit(varOf(v, c), false)
		}
		s.AddClause(lits...)
	}
	for v := 0; v < n; v++ {
		u := (v + 1) % n
		for c := 0; c < k; c++ {
			s.AddClause(MkLit(varOf(v, c), true), MkLit(varOf(u, c), true))
		}
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("5-cycle 3-coloring: want sat, got %v", st)
	}
	// Verify the model is a proper coloring.
	color := make([]int, n)
	for v := 0; v < n; v++ {
		color[v] = -1
		for c := 0; c < k; c++ {
			if s.ValueOf(varOf(v, c)) {
				color[v] = c
				break
			}
		}
		if color[v] == -1 {
			t.Fatalf("node %d uncolored", v)
		}
	}
	for v := 0; v < n; v++ {
		if color[v] == color[(v+1)%n] {
			t.Fatalf("adjacent nodes %d,%d share color", v, (v+1)%n)
		}
	}
}

func TestTwoColoringOddCycleUnsat(t *testing.T) {
	// 2-coloring an odd cycle is unsat. Encode color as one bool per node.
	s := New()
	n := 7
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for v := 1; v <= n; v++ {
		u := v%n + 1
		s.AddClause(MkLit(v, false), MkLit(u, false))
		s.AddClause(MkLit(v, true), MkLit(u, true))
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("odd cycle 2-coloring: want unsat, got %v", st)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	x, y := s.NewVar(), s.NewVar()
	// x -> y
	s.AddClause(MkLit(x, true), MkLit(y, false))
	if st := s.Solve(MkLit(x, false), MkLit(y, true)); st != Unsat {
		t.Fatalf("assuming x & ~y with x->y: want unsat, got %v", st)
	}
	// Conflict subset should mention both assumptions.
	cs := s.ConflictSubset()
	if len(cs) == 0 {
		t.Fatal("expected nonempty conflict subset")
	}
	// The solver must be reusable after an assumption failure.
	if st := s.Solve(MkLit(x, false)); st != Sat {
		t.Fatalf("assuming only x: want sat, got %v", st)
	}
	if !s.ValueOf(x) || !s.ValueOf(y) {
		t.Fatal("model should have x and y true")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("no assumptions: want sat, got %v", st)
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := New()
	x := s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(x, true)) // tautology, ignored
	if st := s.Solve(MkLit(x, false), MkLit(x, true)); st != Unsat {
		t.Fatalf("contradictory assumptions: want unsat, got %v", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("still satisfiable without assumptions, got %v", st)
	}
}

func TestIncrementalGrowth(t *testing.T) {
	// Add clauses between solve calls.
	s := New()
	x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(x, false), MkLit(y, false))
	if st := s.Solve(); st != Sat {
		t.Fatal("phase 1 should be sat")
	}
	s.AddClause(MkLit(x, true))
	s.AddClause(MkLit(y, true), MkLit(z, false))
	if st := s.Solve(); st != Sat {
		t.Fatal("phase 2 should be sat")
	}
	if s.ValueOf(x) {
		t.Fatal("x must be false")
	}
	if !s.ValueOf(y) || !s.ValueOf(z) {
		t.Fatal("y and z must be true")
	}
	s.AddClause(MkLit(z, true))
	if st := s.Solve(); st != Unsat {
		t.Fatal("phase 3 should be unsat")
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver against
// exhaustive enumeration on small random instances.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(40)
		clauses := make([][]int, m)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]int, k)
			for j := range c {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c[j] = v
			}
			clauses[i] = c
		}
		// Brute force.
		bfSat := false
		for asg := 0; asg < 1<<uint(n); asg++ {
			all := true
			for _, c := range clauses {
				cv := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := asg>>(uint(v-1))&1 == 1
					if l < 0 {
						val = !val
					}
					if val {
						cv = true
						break
					}
				}
				if !cv {
					all = false
					break
				}
			}
			if all {
				bfSat = true
				break
			}
		}
		s := New()
		ok := addAll(s, n, clauses)
		var st Status
		if !ok {
			st = Unsat
		} else {
			st = s.Solve()
		}
		if (st == Sat) != bfSat {
			t.Fatalf("iter %d: solver=%v bruteforce sat=%v, clauses=%v", iter, st, bfSat, clauses)
		}
		// If sat, check the model actually satisfies the clauses.
		if st == Sat {
			for _, c := range clauses {
				cv := false
				for _, l := range c {
					v := l
					if v < 0 {
						v = -v
					}
					val := s.ValueOf(v)
					if l < 0 {
						val = !val
					}
					if val {
						cv = true
						break
					}
				}
				if !cv {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, c)
				}
			}
		}
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9) // hard enough to not finish in 1 conflict
	s.MaxConflicts = 1
	if st := s.Solve(); st != Unknown && st != Unsat {
		t.Fatalf("want unknown (budget) or unsat, got %v", st)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Fatal("Status.String wrong")
	}
}

func TestLitBasics(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatal("positive literal wrong")
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatal("negation wrong")
	}
	if n.Not() != l {
		t.Fatal("double negation should be identity")
	}
	if l.String() != "5" || n.String() != "-5" {
		t.Fatal("String wrong")
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 7)
		if s.Solve() != Unsat {
			b.Fatal("expected unsat")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 60, 250
	clauses := make([][]int, m)
	for i := range clauses {
		c := make([]int, 3)
		for j := range c {
			v := 1 + rng.Intn(n)
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		clauses[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		addAll(s, n, clauses)
		s.Solve()
	}
}
