package sat

// varHeap is a max-heap of variables ordered by activity, with position
// tracking so activities can be updated in place.
type varHeap struct {
	s    *Solver
	heap []int
	pos  []int // variable -> index in heap, -1 if absent
}

func newVarHeap(s *Solver) *varHeap {
	return &varHeap{s: s, pos: []int{-1}}
}

func (h *varHeap) less(i, j int) bool {
	return h.s.vars[h.heap[i]].activity > h.s.vars[h.heap[j]].activity
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	//alive:bounded — heap sift, O(log n).
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	//alive:bounded — heap sift, O(log n).
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// insert adds v if absent.
func (h *varHeap) insert(v int) {
	//alive:bounded — grows the position table to a fixed index.
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if v < len(h.pos) && h.pos[v] >= 0 {
		h.up(h.pos[v])
	}
}

// removeMax pops the highest-activity variable.
func (h *varHeap) removeMax() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}
