package sat

import "testing"

// TestOnSampleRestartBoundaries: a hard unsat instance must deliver a
// snapshot at every restart boundary, with monotone search totals and a
// consistent clause-database shape.
func TestOnSampleRestartBoundaries(t *testing.T) {
	s := New()
	pigeonhole(s, 7)
	var samples []SampleStats
	s.OnSample = func(st SampleStats) { samples = append(samples, st) }
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) = %v, want Unsat", st)
	}
	if len(samples) == 0 {
		t.Fatal("no samples on a multi-restart solve")
	}
	var prev SampleStats
	for i, st := range samples {
		if st.Conflicts < prev.Conflicts || st.Propagations < prev.Propagations {
			t.Errorf("sample %d totals regressed: %+v after %+v", i, st, prev)
		}
		if st.LearntCore+st.LearntTier2 > st.Learnts {
			t.Errorf("sample %d tier counts exceed learnts: %+v", i, st)
		}
		if st.Vars != s.NumVars() || st.Clauses > s.NumClauses()+int(st.Learned) {
			t.Errorf("sample %d sizes implausible: %+v", i, st)
		}
		prev = st
	}
	if prev.Conflicts == 0 || prev.Learned == 0 {
		t.Errorf("final sample shows no search work: %+v", prev)
	}
}

// TestOnSampleBudgetExit: a budget-exhausted Unknown exit must still
// emit at least one snapshot — the guarantee the flight recorder's
// "deadline queries always carry samples" property rests on.
func TestOnSampleBudgetExit(t *testing.T) {
	s := New()
	pigeonhole(s, 9)
	s.MaxConflicts = 120 // past the first 100-conflict search leg
	fired := 0
	s.OnSample = func(SampleStats) { fired++ }
	if st := s.Solve(); st != Unknown {
		t.Fatalf("budgeted PHP(10,9) = %v, want Unknown", st)
	}
	if fired == 0 {
		t.Fatal("Unknown exit emitted no sample")
	}
}

// TestOnSampleStoppedAtEntry: a solve that is cancelled before search
// starts still snapshots the core once.
func TestOnSampleStoppedAtEntry(t *testing.T) {
	s := New()
	pigeonhole(s, 4)
	var flag StopFlag
	flag.Stop()
	s.Stop = &flag
	fired := 0
	s.OnSample = func(SampleStats) { fired++ }
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-stopped solve = %v, want Unknown", st)
	}
	if fired != 1 {
		t.Fatalf("pre-stopped solve emitted %d samples, want 1", fired)
	}
}
