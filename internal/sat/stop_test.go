package sat

import (
	"testing"
	"time"
)

func TestStopFlagNilSafe(t *testing.T) {
	var f *StopFlag
	if f.Stopped() {
		t.Fatal("nil flag must not report stopped")
	}
	f.Stop() // must not panic
	g := &StopFlag{}
	if g.Stopped() {
		t.Fatal("fresh flag must not report stopped")
	}
	g.Stop()
	if !g.Stopped() {
		t.Fatal("Stop did not trip the flag")
	}
}

func TestStopBeforeSolve(t *testing.T) {
	s := New()
	pigeonhole(s, 12)
	s.Stop = &StopFlag{}
	s.Stop.Stop()
	start := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-stopped solve = %v, want unknown", st)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted should report true after a stop")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-stopped solve took %v, want immediate return", d)
	}
}

func TestStopMidSearch(t *testing.T) {
	// PHP(13,12) needs far more than 100ms of CDCL search; the stop flag
	// must yank the solver out of the middle of it promptly.
	s := New()
	pigeonhole(s, 12)
	s.Stop = &StopFlag{}

	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()

	time.Sleep(100 * time.Millisecond)
	s.Stop.Stop()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("stopped solve = %v, want unknown", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solver did not notice the stop flag within 10s")
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted should report true after a stop")
	}
}

func TestStopDoesNotAffectBudgetReporting(t *testing.T) {
	// With a flag present but never tripped, a conflict-budget Unknown
	// must not read as an interruption.
	s := New()
	pigeonhole(s, 9)
	s.Stop = &StopFlag{}
	s.MaxConflicts = 1
	st := s.Solve()
	if st == Unknown && s.Interrupted() {
		t.Fatal("budget exhaustion misreported as interruption")
	}
}
