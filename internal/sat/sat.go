// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation,
// first-UIP conflict analysis with recursive clause minimization, EVSIDS
// variable activity, phase saving, Luby restarts, and learned-clause
// database reduction. It is the decision procedure underneath the
// bitvector layer.
package sat

import (
	"fmt"

	"alive/internal/faultinject"
)

// Lit is a literal: variable v (1-based) encoded as v<<1, negated as
// v<<1|1. The zero Lit is invalid.
type Lit int32

// MkLit builds a literal for the 1-based variable v; neg selects the
// negative polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the 1-based variable of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negative literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Value is a ternary truth value.
type Value int8

// Truth values: Unassigned is the zero value.
const (
	Unassigned Value = iota
	True
	False
)

func (v Value) negate() Value {
	switch v {
	case True:
		return False
	case False:
		return True
	}
	return Unassigned
}

// Status is the result of a Solve call.
type Status int

// Solver outcomes. Unknown is returned when the conflict or propagation
// budget is exhausted.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

type varData struct {
	value    Value // current assignment
	level    int32 // decision level of the assignment
	reason   *clause
	activity float64
	phase    bool // saved phase: last assigned polarity (true = positive)
	seen     bool // scratch for conflict analysis
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	vars    []varData // index 0 unused
	watches [][]watcher
	clauses []*clause
	learnts []*clause

	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	varInc    float64
	clauseInc float64

	order *varHeap

	conflicts    int64
	decisions    int64
	propagations int64
	restarts     int64
	learned      int64

	// MaxConflicts bounds the search; <= 0 means unbounded. When the bound
	// is hit Solve returns Unknown.
	MaxConflicts int64

	// Stop, when non-nil, is polled every stopPollInterval propagations;
	// once it reports stopped, Solve abandons the search and returns
	// Unknown. Interrupted distinguishes that outcome from a conflict
	// budget exhaustion.
	Stop *StopFlag

	nextStopPoll int64 // propagation count of the next Stop poll

	ok bool // false once the clause set is trivially unsat

	assumptions []Lit
	conflictSet []Lit // final conflict clause over assumptions
	model       []bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, clauseInc: 1, ok: true}
	s.vars = make([]varData, 1)
	s.watches = make([][]watcher, 2)
	s.order = newVarHeap(s)
	return s
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	v := len(s.vars)
	s.vars = append(s.vars, varData{})
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Conflicts returns the number of conflicts encountered so far.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// Propagations returns the number of unit propagations performed.
func (s *Solver) Propagations() int64 { return s.propagations }

// Decisions returns the number of branching decisions made.
func (s *Solver) Decisions() int64 { return s.decisions }

// Restarts returns the number of Luby restarts taken.
func (s *Solver) Restarts() int64 { return s.restarts }

// Learned returns the number of conflict-derived clauses (including
// learned units).
func (s *Solver) Learned() int64 { return s.learned }

// Interrupted reports whether the Stop flag has tripped — after an
// Unknown result it distinguishes cancellation from conflict-budget
// exhaustion.
func (s *Solver) Interrupted() bool { return s.Stop.Stopped() }

func (s *Solver) value(l Lit) Value {
	v := s.vars[l.Var()].value
	if l.Neg() {
		return v.negate()
	}
	return v
}

func (s *Solver) level(v int) int { return int(s.vars[v].level) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause; it returns false if the clause set became
// trivially unsatisfiable. Must be called at decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses.
	out := lits[:0:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() <= 0 || l.Var() >= len(s.vars) {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch {
		case s.value(l) == True || seen[l.Not()]:
			return true // already satisfied / tautology
		case s.value(l) == False || seen[l]:
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, reason *clause) {
	vd := &s.vars[l.Var()]
	if l.Neg() {
		vd.value = False
		vd.phase = false
	} else {
		vd.value = True
		vd.phase = true
	}
	vd.level = int32(s.decisionLevel())
	vd.reason = reason
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == True {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == True {
				ws[j] = watcher{c, c.lits[0]}
				j++
				continue
			}
			// Find a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, c.lits[0]})
					continue nextWatcher
				}
			}
			// Unit or conflicting.
			ws[j] = watcher{c, c.lits[0]}
			j++
			if s.value(c.lits[0]) == False {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	var toClear []int

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !s.vars[v].seen && s.level(v) > 0 {
				s.vars[v].seen = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if s.level(v) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.vars[p.Var()].seen = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.vars[p.Var()].reason
	}
	learnt[0] = p.Not()

	// Recursive minimization: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.vars[v].reason == nil || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	for _, v := range toClear {
		s.vars[v].seen = false
	}

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level(learnt[i].Var()) > s.level(learnt[maxI].Var()) {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level(learnt[1].Var())
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the seen literals (simple
// non-recursive approximation of MiniSat's ccmin: every antecedent literal
// must itself be seen or at level 0).
func (s *Solver) litRedundant(l Lit) bool {
	r := s.vars[l.Var()].reason
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if !s.vars[q.Var()].seen && s.level(q.Var()) > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.vars[v].value = Unassigned
		s.vars[v].reason = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

func (s *Solver) bumpVar(v int) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > 1e100 {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].activity *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

const (
	varDecay    = 1 / 0.95
	clauseDecay = 1 / 0.999
)

// pickBranchLit selects the unassigned variable with the highest activity,
// using its saved phase.
func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.removeMax()
		if !ok {
			return 0
		}
		if s.vars[v].value == Unassigned {
			s.decisions++
			return MkLit(v, !s.vars[v].phase)
		}
	}
}

// reduceDB removes the least active half of the learnt clauses (keeping
// binary clauses and current reasons).
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	// Selection by median of activities (approximate: nth element via sort).
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	pivot := quickSelect(acts, len(acts)/2)
	locked := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.vars[l.Var()].reason; r != nil {
			locked[r] = true
		}
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) == 2 || locked[c] || c.activity >= pivot {
			kept = append(kept, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = kept
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence element i (1-based).
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// It returns Sat, Unsat, or Unknown (budget exhausted). After Sat, Model
// and ValueOf are valid; after Unsat under assumptions, ConflictSubset
// returns a subset of the assumptions that is jointly unsatisfiable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	if s.Stop.Stopped() {
		return Unknown
	}
	s.assumptions = assumptions
	s.conflictSet = nil
	defer s.backtrackTo(0)

	restartNum := int64(0)
	baseInterval := int64(100)
	maxLearnts := len(s.clauses)/3 + 100
	startConflicts := s.conflicts

	for {
		restartNum++
		if restartNum > 1 {
			s.restarts++
		}
		budget := luby(restartNum) * baseInterval
		st := s.search(budget, maxLearnts)
		if st == Sat {
			// Snapshot the model before the deferred backtrack clears it.
			if cap(s.model) < len(s.vars) {
				s.model = make([]bool, len(s.vars))
			}
			s.model = s.model[:len(s.vars)]
			for v := 1; v < len(s.vars); v++ {
				s.model[v] = s.vars[v].value == True
			}
		}
		if st != Unknown {
			return st
		}
		if s.Stop.Stopped() {
			return Unknown
		}
		if s.MaxConflicts > 0 && s.conflicts-startConflicts >= s.MaxConflicts {
			return Unknown
		}
		maxLearnts += maxLearnts / 10
	}
}

// search runs CDCL until a result, a restart (returns Unknown after
// conflictBudget conflicts), or exhaustion.
func (s *Solver) search(conflictBudget int64, maxLearnts int) Status {
	conflictsHere := int64(0)
	for {
		if s.Stop != nil && s.propagations >= s.nextStopPoll {
			s.nextStopPoll = s.propagations + stopPollInterval
			faultinject.Fire(faultinject.SitePropagate, s.Stop)
			if s.Stop.Stopped() {
				s.backtrackTo(0)
				return Unknown
			}
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.learned++
			s.backtrackTo(btLevel)
			if len(learnt) == 1 && btLevel == 0 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				if s.value(learnt[0]) == Unassigned {
					s.uncheckedEnqueue(learnt[0], c)
				}
			}
			s.varInc *= varDecay
			s.clauseInc *= clauseDecay
			continue
		}
		if conflictsHere >= conflictBudget {
			s.backtrackTo(0)
			return Unknown
		}
		if len(s.learnts) > maxLearnts+len(s.trail) {
			s.reduceDB()
		}
		// Enqueue pending assumptions as decisions.
		if s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case False:
				s.buildConflictFromAssumption(a)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
				continue
			}
		}
		faultinject.Fire(faultinject.SiteDecide, s.Stop)
		if s.Stop.Stopped() {
			s.backtrackTo(0)
			return Unknown
		}
		l := s.pickBranchLit()
		if l == 0 {
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, nil)
	}
}

// buildConflictFromAssumption computes the subset of assumptions
// responsible for the assumption a being falsified: a plus the
// assumption decisions reachable through the reason graph of ~a.
func (s *Solver) buildConflictFromAssumption(a Lit) {
	s.conflictSet = []Lit{a}
	seen := map[int]bool{}
	var rec func(l Lit)
	rec = func(l Lit) {
		v := l.Var()
		if seen[v] || s.level(v) == 0 {
			return
		}
		seen[v] = true
		if r := s.vars[v].reason; r != nil {
			for _, q := range r.lits {
				if q.Var() != v {
					rec(q)
				}
			}
		} else {
			// A decision below the assumption prefix is an assumption.
			s.conflictSet = append(s.conflictSet, l)
		}
	}
	rec(a.Not())
}

// ConflictSubset returns, after an Unsat result under assumptions, a
// subset of the assumptions that is jointly unsatisfiable with the
// clauses (empty when the clause set itself is unsat).
func (s *Solver) ConflictSubset() []Lit { return s.conflictSet }

// ValueOf returns the model value of variable v from the most recent Sat
// result.
func (s *Solver) ValueOf(v int) bool { return v < len(s.model) && s.model[v] }

// Model returns the most recent satisfying assignment as a slice indexed
// by variable (index 0 unused).
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// quickSelect returns the k-th smallest element of a (a is scrambled).
func quickSelect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
