// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation,
// first-UIP conflict analysis with recursive clause minimization, EVSIDS
// variable activity, phase saving, Luby restarts, and learned-clause
// database reduction. It is the decision procedure underneath the
// bitvector layer.
package sat

import (
	"fmt"
	"sort"

	"alive/internal/faultinject"
)

// Lit is a literal: variable v (1-based) encoded as v<<1, negated as
// v<<1|1. The zero Lit is invalid.
type Lit int32

// MkLit builds a literal for the 1-based variable v; neg selects the
// negative polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the 1-based variable of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negative literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

// Value is a ternary truth value.
type Value int8

// Truth values: Unassigned is the zero value.
const (
	Unassigned Value = iota
	True
	False
)

func (v Value) negate() Value {
	switch v {
	case True:
		return False
	case False:
		return True
	}
	return Unassigned
}

// Status is the result of a Solve call.
type Status int

// Solver outcomes. Unknown is returned when the conflict or propagation
// budget is exhausted.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Learned-clause tiers, in increasing order of worth. Problem clauses
// carry tierLocal's zero value but are never reduced; for learnt
// clauses the tier drives the three-tier database policy: core clauses
// (LBD ≤ coreLBDCut) are kept forever, tier2 clauses (LBD ≤
// tier2LBDCut) survive until they go unused for tier2Stale conflicts,
// and local clauses are the reduction pool.
const (
	tierLocal int8 = iota
	tierTwo
	tierCore
)

const (
	coreLBDCut  = 3
	tier2LBDCut = 6
	// tier2Stale demotes a tier2 clause to local after this many
	// conflicts without participating in conflict analysis.
	tier2Stale = 30000
)

type clause struct {
	lits     []Lit
	learnt   bool
	deleted  bool // removed from the database; stale references skip it
	tier     int8
	lbd      int32 // literal block distance (learnt clauses only)
	activity float64
	sig      uint64 // subsumption signature; maintained during inprocessing
	touched  int64  // conflict count at last use in conflict analysis
}

type watcher struct {
	c       *clause
	blocker Lit
}

type varData struct {
	value    Value // current assignment
	level    int32 // decision level of the assignment
	reason   *clause
	activity float64
	phase    bool // saved phase: last assigned polarity (true = positive)
	seen     bool // scratch for conflict analysis
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	vars    []varData // index 0 unused
	watches [][]watcher
	clauses []*clause
	learnts []*clause

	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	varInc    float64
	clauseInc float64

	order *varHeap

	conflicts    int64
	decisions    int64
	propagations int64
	restarts     int64
	learned      int64

	// lbdStamp/lbdGen implement the per-level stamp set behind
	// computeLBD: stamping a level with the current generation counts
	// each decision level once without clearing between calls.
	lbdStamp []int64
	lbdGen   int64

	// nextReduce is the conflict count that triggers the next
	// learned-clause database reduction; the interval grows linearly
	// with each reduction (glucose-style).
	nextReduce int64

	// LBD-driven restart state (glucose-style): a ring of the most
	// recent learnt LBDs against the running mean of all learnt LBDs —
	// when recent conflicts produce markedly worse (higher-LBD) clauses
	// than the historical average, the current branch is judged
	// unproductive and the search restarts. trailEma tracks the mean
	// trail size at conflicts; a conflict with a much larger trail than
	// usual suggests the solver is close to a model, and the restart is
	// blocked (the ring is cleared) so it can finish.
	lbdRing    [lbdRingSize]int32
	lbdRingSum int64
	lbdRingLen int
	lbdRingPos int
	sumLBD     int64 // total LBD over all learnt clauses this solve
	solveBase  int64 // s.conflicts at Solve entry, denominator base for sumLBD
	trailEma   float64

	// Inprocessing state (inprocess.go): schedule, the queue of learnts
	// not yet screened for subsumption, round-robin vivification
	// cursors, and the per-run tick budget.
	nextInprocess int64
	newLearnts    []*clause
	vivClauseCur  int
	vivLearntCur  int
	ipTicks       int64

	// Inprocessing and clause-database counters.
	lbdCore          int64
	dbReductions     int64
	inprocessings    int64
	clausesVivified  int64
	vivifyShrunkLits int64
	learntsSubsumed  int64

	// MaxConflicts bounds the search; <= 0 means unbounded. When the bound
	// is hit Solve returns Unknown.
	MaxConflicts int64

	// DisableInprocess turns off in-search static analysis of the clause
	// database (vivification, learnt subsumption, root saturation with
	// garbage collection). The LBD-tiered reduction policy stays on — it
	// replaces the old size/activity heuristic unconditionally.
	DisableInprocess bool

	// InprocessConflicts is the number of conflicts between inprocessing
	// runs (<= 0 means the default). Tests shrink it to force
	// inprocessing on small instances; since runs only happen at restart
	// boundaries, values below the restart base interval shrink that
	// interval too, so the forced schedule is honored even on instances
	// that would otherwise never restart.
	InprocessConflicts int64

	// InprocessBudget is the tick budget of one inprocessing run (<= 0
	// means the default); roughly one tick per literal visited. Budget
	// exhaustion stops the run early, which is always sound — every
	// rewrite preserves logical equivalence.
	InprocessBudget int64

	// OnInprocess, when non-nil, is called at the start of every
	// inprocessing run; the returned function (may be nil) runs when the
	// run finishes. The solver façade uses it to record "inprocess"
	// telemetry spans without the SAT core importing telemetry.
	OnInprocess func() func()

	// OnSample, when non-nil, is called with a snapshot of the search
	// internals at every restart boundary and on every Unknown exit
	// from Solve (budget exhausted or stop-flag fired) — so even a
	// deadline-killed solve emits at least one sample once search has
	// begun. Like OnInprocess, the hook keeps the SAT core free of
	// metrics imports: the observability layer owns what the snapshots
	// mean. When nil the cost is a single pointer test per restart.
	OnSample func(SampleStats)

	// Stop, when non-nil, is polled every stopPollInterval propagations;
	// once it reports stopped, Solve abandons the search and returns
	// Unknown. Interrupted distinguishes that outcome from a conflict
	// budget exhaustion.
	Stop *StopFlag

	nextStopPoll int64 // propagation count of the next Stop poll

	ok bool // false once the clause set is trivially unsat

	assumptions []Lit
	conflictSet []Lit // final conflict clause over assumptions
	model       []bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, clauseInc: 1, ok: true}
	s.vars = make([]varData, 1)
	s.watches = make([][]watcher, 2)
	s.order = newVarHeap(s)
	return s
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	v := len(s.vars)
	s.vars = append(s.vars, varData{})
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.vars) - 1 }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learnt clauses currently retained in
// the database. Across incremental Solve calls this is the knowledge
// carried from one query to the next.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Conflicts returns the number of conflicts encountered so far.
func (s *Solver) Conflicts() int64 { return s.conflicts }

// Propagations returns the number of unit propagations performed.
func (s *Solver) Propagations() int64 { return s.propagations }

// Decisions returns the number of branching decisions made.
func (s *Solver) Decisions() int64 { return s.decisions }

// Restarts returns the number of Luby restarts taken.
func (s *Solver) Restarts() int64 { return s.restarts }

// Learned returns the number of conflict-derived clauses (including
// learned units).
func (s *Solver) Learned() int64 { return s.learned }

// LBDCore returns the number of learnt clauses that entered the core
// tier (LBD ≤ coreLBDCut at learn time or by later improvement).
func (s *Solver) LBDCore() int64 { return s.lbdCore }

// DBReductions returns the number of learned-clause database
// reductions performed.
func (s *Solver) DBReductions() int64 { return s.dbReductions }

// Inprocessings returns the number of inprocessing runs taken at
// restart boundaries.
func (s *Solver) Inprocessings() int64 { return s.inprocessings }

// ClausesVivified returns the number of clauses shrunk by vivification.
func (s *Solver) ClausesVivified() int64 { return s.clausesVivified }

// VivifyShrunkLits returns the total number of literals vivification
// removed.
func (s *Solver) VivifyShrunkLits() int64 { return s.vivifyShrunkLits }

// LearntsSubsumed returns the number of database clauses deleted by
// backward subsumption against newly learnt clauses.
func (s *Solver) LearntsSubsumed() int64 { return s.learntsSubsumed }

// Interrupted reports whether the Stop flag has tripped — after an
// Unknown result it distinguishes cancellation from conflict-budget
// exhaustion.
func (s *Solver) Interrupted() bool { return s.Stop.Stopped() }

// Ok reports whether the clause database is still consistent at the
// root. False means an AddClause or a root-level conflict refuted the
// clause set outright, with no assumptions involved; an incremental
// caller whose base is satisfiable by construction treats that as an
// internal error.
func (s *Solver) Ok() bool { return s.ok }

func (s *Solver) value(l Lit) Value {
	v := s.vars[l.Var()].value
	if l.Neg() {
		return v.negate()
	}
	return v
}

func (s *Solver) level(v int) int { return int(s.vars[v].level) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause; it returns false if the clause set became
// trivially unsatisfiable. Must be called at decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize: drop duplicate and false literals; detect tautologies and
	// satisfied clauses.
	out := lits[:0:0]
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() <= 0 || l.Var() >= len(s.vars) {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		switch {
		case s.value(l) == True || seen[l.Not()]:
			return true // already satisfied / tautology
		case s.value(l) == False || seen[l]:
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c, c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, reason *clause) {
	vd := &s.vars[l.Var()]
	if l.Neg() {
		vd.value = False
		vd.phase = false
	} else {
		vd.value = True
		vd.phase = true
	}
	vd.level = int32(s.decisionLevel())
	vd.reason = reason
	s.trail = append(s.trail, l)
}

// propagate runs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	//alive:bounded — the propagation queue is the trail, at most nvars entries per call.
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == True {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == True {
				ws[j] = watcher{c, c.lits[0]}
				j++
				continue
			}
			// Find a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, c.lits[0]})
					continue nextWatcher
				}
			}
			// Unit or conflicting.
			ws[j] = watcher{c, c.lits[0]}
			j++
			if s.value(c.lits[0]) == False {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	var toClear []int

	//alive:bounded — first-UIP resolution consumes one trail literal per iteration.
	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !s.vars[v].seen && s.level(v) > 0 {
				s.vars[v].seen = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if s.level(v) >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		//alive:bounded — walks down the trail; a seen literal always exists above the asserting point.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.vars[p.Var()].seen = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.vars[p.Var()].reason
	}
	learnt[0] = p.Not()

	// Recursive minimization: drop literals whose reason chains bottom
	// out in other clause literals or root facts (self-subsuming
	// resolution applied exhaustively to the fresh learnt).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.vars[v].reason == nil || !s.litRedundant(learnt[i], &toClear) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	for _, v := range toClear {
		s.vars[v].seen = false
	}

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level(learnt[i].Var()) > s.level(learnt[maxI].Var()) {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level(learnt[1].Var())
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the seen literals: its
// reason chain, followed transitively, reaches only clause literals
// (seen) and root-level facts. Variables proven redundant along the way
// are marked seen and appended to *toClear — memoization that makes the
// whole minimization linear in the visited reasons; on failure the
// marks added by this call are rolled back so an unprovable antecedent
// is not mistaken for a redundant one later.
func (s *Solver) litRedundant(l Lit, toClear *[]int) bool {
	top := len(*toClear)
	stack := []Lit{l}
	//alive:bounded — each variable is marked seen at most once, so the reason-chain walk visits each trail variable once.
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r := s.vars[p.Var()].reason
		for _, q := range r.lits {
			v := q.Var()
			if v == p.Var() || s.vars[v].seen || s.level(v) == 0 {
				continue
			}
			if s.vars[v].reason == nil {
				// A decision outside the clause: l is not redundant. Undo
				// the speculative marks from this call.
				for _, u := range (*toClear)[top:] {
					s.vars[u].seen = false
				}
				*toClear = (*toClear)[:top]
				return false
			}
			s.vars[v].seen = true
			*toClear = append(*toClear, v)
			stack = append(stack, q)
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.vars[v].value = Unassigned
		s.vars[v].reason = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

func (s *Solver) bumpVar(v int) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > 1e100 {
		for i := 1; i < len(s.vars); i++ {
			s.vars[i].activity *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

// computeLBD returns the literal block distance of lits under the
// current assignment: the number of distinct nonzero decision levels.
// Valid only while every literal is assigned (at the conflict, before
// backtracking).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdGen++
	n := int32(0)
	for _, l := range lits {
		lv := s.level(l.Var())
		if lv == 0 {
			continue
		}
		//alive:bounded — grows the stamp table to the current decision level.
		for lv >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			n++
		}
	}
	return n
}

// tierOf maps an LBD to its database tier.
func tierOf(lbd int32) int8 {
	switch {
	case lbd <= coreLBDCut:
		return tierCore
	case lbd <= tier2LBDCut:
		return tierTwo
	}
	return tierLocal
}

// setLBD records a (new or improved) LBD on a learnt clause, promoting
// its tier when the LBD crosses a cut.
func (s *Solver) setLBD(c *clause, lbd int32) {
	c.lbd = lbd
	if t := tierOf(lbd); t > c.tier {
		if t == tierCore {
			s.lbdCore++
		}
		c.tier = t
	}
}

// bumpClause marks a learnt clause as used in conflict analysis: its
// activity rises (local-tier tie-break), its LBD is recomputed under
// the current assignment and kept if improved (dynamic LBD updating on
// propagation — the clause is a reason or the conflict, so all its
// literals are assigned), and its touch stamp refreshes so tier2 aging
// sees it as live.
func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.touched = s.conflicts
	if lbd := s.computeLBD(c.lits); lbd < c.lbd {
		s.setLBD(c, lbd)
	}
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

const (
	varDecay    = 1 / 0.95
	clauseDecay = 1 / 0.999
)

// LBD-driven restart policy (glucose-style). A restart fires when the
// mean LBD of the last lbdRingSize learnt clauses exceeds restartK
// times the mean over the whole solve — recent conflicts are producing
// clauses markedly worse than the solver's historical quality, so the
// current branch is abandoned. A restart is blocked (ring cleared)
// when the conflicting trail is blockR times larger than the running
// mean trail size: an unusually deep trail suggests an almost-complete
// model that a restart would throw away.
const (
	lbdRingSize  = 50
	restartK     = 0.8
	blockR       = 1.4
	trailEmaRate = 1.0 / 5000
)

// noteLBD feeds one learnt clause's LBD and the size of the trail at
// the conflict into the restart policy state.
func (s *Solver) noteLBD(lbd int32, trailSize int) {
	s.sumLBD += int64(lbd)
	if s.lbdRingLen == lbdRingSize {
		s.lbdRingSum -= int64(s.lbdRing[s.lbdRingPos])
	} else {
		s.lbdRingLen++
	}
	s.lbdRing[s.lbdRingPos] = lbd
	s.lbdRingSum += int64(lbd)
	s.lbdRingPos = (s.lbdRingPos + 1) % lbdRingSize
	if s.trailEma == 0 {
		s.trailEma = float64(trailSize)
	} else {
		s.trailEma += (float64(trailSize) - s.trailEma) * trailEmaRate
	}
	if s.lbdRingLen == lbdRingSize && float64(trailSize) > blockR*s.trailEma {
		s.lbdRingLen, s.lbdRingSum, s.lbdRingPos = 0, 0, 0 // block the restart
	}
}

// ResetRestartStats clears the LBD-quality running averages that drive
// the restart policy. An incremental caller invokes it at query
// boundaries so the quality baseline describes the query being solved,
// not the session's whole history — within one query's sub-solves the
// state is left to accumulate, exactly like a fresh solver's single
// Solve call on that query.
func (s *Solver) ResetRestartStats() {
	s.sumLBD = 0
	s.solveBase = s.conflicts
	s.lbdRingLen, s.lbdRingSum, s.lbdRingPos = 0, 0, 0
	s.trailEma = 0
}

// restartPending reports whether the LBD policy asks for a restart,
// clearing the ring so the decision is made on fresh conflicts next
// time.
func (s *Solver) restartPending() bool {
	if s.lbdRingLen < lbdRingSize || s.conflicts == s.solveBase {
		return false
	}
	if float64(s.lbdRingSum)/float64(s.lbdRingLen)*restartK <= float64(s.sumLBD)/float64(s.conflicts-s.solveBase) {
		return false
	}
	s.lbdRingLen, s.lbdRingSum, s.lbdRingPos = 0, 0, 0
	return true
}

// pickBranchLit selects the unassigned variable with the highest activity,
// using its saved phase.
func (s *Solver) pickBranchLit() Lit {
	//alive:bounded — drains the order heap, at most nvars pops per call.
	for {
		v, ok := s.order.removeMax()
		if !ok {
			return 0
		}
		if s.vars[v].value == Unassigned {
			s.decisions++
			return MkLit(v, !s.vars[v].phase)
		}
	}
}

// Database reduction schedule: the first reduction runs after
// reduceBase conflicts, and each reduction pushes the next one
// reduceBase + reduceBump×(reductions so far) conflicts out.
const (
	reduceBase = 2000
	reduceBump = 300
)

// reduceDB enforces the three-tier learned-clause policy: core clauses
// are permanent, tier2 clauses unused for tier2Stale conflicts demote
// to local, and the worst half of the local tier — highest LBD first,
// least active as the tie-break — is removed. Binary clauses and
// current reasons always survive.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	s.dbReductions++
	locked := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.vars[l.Var()].reason; r != nil {
			locked[r] = true
		}
	}
	var local []*clause
	for _, c := range s.learnts {
		if c.tier == tierTwo && s.conflicts-c.touched > tier2Stale {
			c.tier = tierLocal
		}
		if c.tier == tierLocal && len(c.lits) > 2 && !locked[c] {
			local = append(local, c)
		}
	}
	// Deterministic badness order: higher LBD first, then lower
	// activity; SliceStable keeps insertion order on full ties so
	// corpus counters stay reproducible run to run.
	sortClausesByBadness(local)
	for _, c := range local[:len(local)/2] {
		c.deleted = true
		s.detach(c)
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence element i (1-based).
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// It returns Sat, Unsat, or Unknown (budget exhausted). After Sat, Model
// and ValueOf are valid; after Unsat under assumptions, ConflictSubset
// returns a subset of the assumptions that is jointly unsatisfiable.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	if s.Stop.Stopped() {
		s.emitSample()
		return Unknown
	}
	s.assumptions = assumptions
	s.conflictSet = nil
	defer s.backtrackTo(0)

	restartNum := int64(0)
	baseInterval := int64(100)
	if !s.DisableInprocess && s.InprocessConflicts > 0 && s.InprocessConflicts < baseInterval {
		baseInterval = s.InprocessConflicts
	}
	startConflicts := s.conflicts
	if s.nextReduce == 0 {
		s.nextReduce = reduceBase
	}
	if s.nextInprocess == 0 {
		s.nextInprocess = s.inprocessInterval()
	}

	for {
		restartNum++
		if restartNum > 1 {
			s.restarts++
		}
		budget := luby(restartNum) * baseInterval
		st := s.search(budget)
		if st == Sat {
			// Snapshot the model before the deferred backtrack clears it.
			if cap(s.model) < len(s.vars) {
				s.model = make([]bool, len(s.vars))
			}
			s.model = s.model[:len(s.vars)]
			for v := 1; v < len(s.vars); v++ {
				s.model[v] = s.vars[v].value == True
			}
		}
		if st != Unknown {
			return st
		}
		// Sample here — after a search leg, before deciding whether to
		// continue — so the hook sees every restart boundary and every
		// Unknown exit (stop-flag or budget) gets a final snapshot.
		s.emitSample()
		if s.Stop.Stopped() {
			return Unknown
		}
		if s.MaxConflicts > 0 && s.conflicts-startConflicts >= s.MaxConflicts {
			return Unknown
		}
		// Restart boundary: the trail is back at level 0, which is where
		// in-search static analysis of the clause database is sound and
		// cheap. A root-level refutation during inprocessing ends the
		// solve outright.
		if !s.DisableInprocess && s.conflicts >= s.nextInprocess {
			if !s.inprocess() {
				return Unsat
			}
			if s.Stop.Stopped() {
				return Unknown
			}
			s.nextInprocess = s.conflicts + s.inprocessInterval()
		}
	}
}

// search runs CDCL until a result, a restart (returns Unknown after
// conflictBudget conflicts), or exhaustion.
func (s *Solver) search(conflictBudget int64) Status {
	conflictsHere := int64(0)
	for {
		if s.Stop != nil && s.propagations >= s.nextStopPoll {
			s.nextStopPoll = s.propagations + stopPollInterval
			faultinject.Fire(faultinject.SitePropagate, s.Stop)
			if s.Stop.Stopped() {
				s.backtrackTo(0)
				return Unknown
			}
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.learned++
			// LBD must be read before backtracking unassigns the
			// asserting literal's variable.
			lbd := s.computeLBD(learnt)
			s.noteLBD(lbd, len(s.trail))
			s.backtrackTo(btLevel)
			if len(learnt) == 1 && btLevel == 0 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, touched: s.conflicts, lbd: lbd + 1}
				s.setLBD(c, lbd)
				s.learnts = append(s.learnts, c)
				if !s.DisableInprocess && len(s.newLearnts) < maxNewLearnts {
					s.newLearnts = append(s.newLearnts, c)
				}
				s.attach(c)
				s.bumpClause(c)
				if s.value(learnt[0]) == Unassigned {
					s.uncheckedEnqueue(learnt[0], c)
				}
			}
			s.varInc *= varDecay
			s.clauseInc *= clauseDecay
			continue
		}
		if conflictsHere >= conflictBudget || s.restartPending() {
			s.backtrackTo(0)
			return Unknown
		}
		if s.conflicts >= s.nextReduce {
			s.reduceDB()
			s.nextReduce = s.conflicts + reduceBase + reduceBump*s.dbReductions
		}
		// Enqueue pending assumptions as decisions.
		if s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case False:
				s.buildConflictFromAssumption(a)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
				continue
			}
		}
		faultinject.Fire(faultinject.SiteDecide, s.Stop)
		if s.Stop.Stopped() {
			s.backtrackTo(0)
			return Unknown
		}
		l := s.pickBranchLit()
		if l == 0 {
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, nil)
	}
}

// buildConflictFromAssumption computes the subset of assumptions
// responsible for the assumption a being falsified: a plus the
// assumption decisions reachable through the reason graph of ~a.
func (s *Solver) buildConflictFromAssumption(a Lit) {
	s.conflictSet = []Lit{a}
	seen := map[int]bool{}
	var rec func(l Lit)
	rec = func(l Lit) {
		v := l.Var()
		if seen[v] || s.level(v) == 0 {
			return
		}
		seen[v] = true
		if r := s.vars[v].reason; r != nil {
			for _, q := range r.lits {
				if q.Var() != v {
					rec(q)
				}
			}
		} else {
			// A decision below the assumption prefix is an assumption.
			s.conflictSet = append(s.conflictSet, l)
		}
	}
	rec(a.Not())
}

// ConflictSubset returns, after an Unsat result under assumptions, a
// subset of the assumptions that is jointly unsatisfiable with the
// clauses (empty when the clause set itself is unsat).
func (s *Solver) ConflictSubset() []Lit { return s.conflictSet }

// ProbeUnder runs failed-literal probing under an assumption context:
// the context literals are pushed as decisions and propagated, then
// every still-unassigned variable is probed in both phases. A probe
// whose propagation conflicts proves its literal implied-false under
// the context, so the caller may add the guarded clause
// (¬ctx ∨ ¬lit) and have it propagate at assumption level in later
// solves — the incremental analogue of the failed-literal pass a fresh
// preprocessor runs with the query root asserted as a unit. feasible
// is false when propagation alone refutes the context (the caller may
// then add ¬ctx outright). The trail is fully restored; no clauses are
// learned and the conflict counter is untouched, so probing trades
// propagation effort for search conflicts, never the reverse.
func (s *Solver) ProbeUnder(ctx []Lit) (failed []Lit, feasible bool) {
	if !s.ok {
		return nil, false
	}
	// Probing assigns most of the variable space both ways, which would
	// trash the saved phases that make consecutive warm solves cheap;
	// snapshot and restore them so probing is invisible to the
	// branching heuristic. Registered before the backtrack defer so it
	// runs after the trail is unwound.
	phases := make([]bool, len(s.vars))
	for i := range s.vars {
		phases[i] = s.vars[i].phase
	}
	defer func() {
		for i := range s.vars {
			s.vars[i].phase = phases[i]
		}
	}()
	defer s.backtrackTo(0)
	for _, a := range ctx {
		switch s.value(a) {
		case True:
			continue
		case False:
			return nil, false
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(a, nil)
		if s.propagate() != nil {
			return nil, false
		}
	}
	ctxLevel := s.decisionLevel()
	probes := 0
	for pass := 0; pass < 4; pass++ {
		progress := false
		for v := 1; v < len(s.vars); v++ {
			if s.vars[v].value != Unassigned {
				continue
			}
			// The pass count bounds the fixpoint, but every probe runs
			// full propagation over the clause set, so on big encodings a
			// deadline can strike mid-pass. The failed literals found so
			// far are each individually implied, so stopping early keeps
			// the result sound.
			if probes++; probes&63 == 0 && s.Stop.Stopped() {
				return failed, true
			}
			// Literals the first (negative) phase probe implied, kept for
			// lifting: anything the second phase also implies holds under
			// the context regardless of v.
			var first []Lit
			for pi, l := range [2]Lit{MkLit(v, false), MkLit(v, true)} {
				// An earlier failed literal's propagation may have assigned
				// this variable at the context level in the meantime.
				if s.value(l) != Unassigned {
					break
				}
				base := len(s.trail)
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(l, nil)
				confl := s.propagate()
				var lifted []Lit
				if confl == nil {
					if pi == 0 {
						first = append(first, s.trail[base+1:]...)
					} else {
						for _, u := range first {
							if s.value(u) == True {
								lifted = append(lifted, u)
							}
						}
					}
				}
				s.backtrackTo(ctxLevel)
				if confl != nil {
					failed = append(failed, l)
					progress = true
					// Assert the implication at the context level so later
					// probes (and their propagations) build on it.
					s.uncheckedEnqueue(l.Not(), nil)
					if s.propagate() != nil {
						return failed, false
					}
					continue
				}
				// A lifted literal u is implied by both v and ¬v, so it is
				// implied by the context alone; report it as the failed
				// literal ¬u and assert it like one.
				for _, u := range lifted {
					if s.value(u) != Unassigned {
						continue
					}
					failed = append(failed, u.Not())
					progress = true
					s.uncheckedEnqueue(u, nil)
					if s.propagate() != nil {
						return failed, false
					}
				}
			}
		}
		// Each failed literal strengthens the context, so earlier
		// variables may fail on a re-probe; iterate to a bounded
		// fixpoint, like a fresh preprocessor's probing loop.
		if !progress {
			break
		}
	}
	return failed, true
}

// ValueOf returns the model value of variable v from the most recent Sat
// result.
func (s *Solver) ValueOf(v int) bool { return v < len(s.model) && s.model[v] }

// Model returns the most recent satisfying assignment as a slice indexed
// by variable (index 0 unused).
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// sortClausesByBadness orders candidates for removal: highest LBD
// first, lowest activity as the tie-break.
func sortClausesByBadness(cs []*clause) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].lbd != cs[j].lbd {
			return cs[i].lbd > cs[j].lbd
		}
		return cs[i].activity < cs[j].activity
	})
}
