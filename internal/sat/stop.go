package sat

import "sync/atomic"

// StopCause classifies who tripped a StopFlag, so the verifier can
// surface the right structured Unknown reason: a plain cancellation, a
// memory-governor abort, or an injected fault. The first cause recorded
// wins; later trips keep the flag raised but do not overwrite it.
type StopCause int32

// Stop causes.
const (
	// StopNone: the flag has not tripped (or tripped with no cause,
	// which Stop never does).
	StopNone StopCause = iota
	// StopExternal: a plain Stop() call — context cancellation, a
	// deadline governor, a signal handler.
	StopExternal
	// StopOOM: the corpus memory governor aborted this verification to
	// keep the live heap under its budget.
	StopOOM
	// StopInjected: a fault-injection KindStop fault flipped the flag.
	StopInjected
	// StopInjectedDeadline: a fault-injection KindDeadline fault
	// simulated a deadline expiry.
	StopInjectedDeadline
)

// StopFlag is a cooperative cancellation signal shared between a
// controlling goroutine and the solving stack. A controller calls Stop
// (from a deadline timer, a context watcher, a signal handler, or the
// corpus memory governor); the solver polls Stopped at
// propagation-count intervals and abandons the search with an Unknown
// result. The zero value is ready to use, a nil *StopFlag never reports
// stopped, and all methods are safe for concurrent use.
type StopFlag struct {
	cause   atomic.Int32
	stopped atomic.Bool
}

// Stop requests that any solver sharing the flag abandon its search.
func (f *StopFlag) Stop() { f.StopWith(StopExternal) }

// StopWith trips the flag recording why. The cause is written before
// the flag is raised and the first cause sticks, so a reader that
// observes Stopped always sees a stable, first-wins Cause.
func (f *StopFlag) StopWith(c StopCause) {
	if f != nil {
		f.cause.CompareAndSwap(int32(StopNone), int32(c))
		f.stopped.Store(true)
	}
}

// Stopped reports whether Stop has been called.
func (f *StopFlag) Stopped() bool {
	return f != nil && f.stopped.Load()
}

// Cause returns who tripped the flag (StopNone when untripped).
func (f *StopFlag) Cause() StopCause {
	if f == nil {
		return StopNone
	}
	return StopCause(f.cause.Load())
}

// InjectStop implements faultinject.Stopper: a KindStop fault trips the
// flag classified as an injected fault.
func (f *StopFlag) InjectStop() { f.StopWith(StopInjected) }

// InjectDeadline implements faultinject.Stopper: a KindDeadline fault
// trips the flag classified as a deadline expiry.
func (f *StopFlag) InjectDeadline() { f.StopWith(StopInjectedDeadline) }

// stopPollInterval is the number of propagations between polls of the
// stop flag: frequent enough that even pathological instances notice a
// deadline within microseconds, rare enough that the atomic load never
// shows up in a profile.
const stopPollInterval = 2048
