package sat

import "sync/atomic"

// StopFlag is a cooperative cancellation signal shared between a
// controlling goroutine and the solving stack. A controller calls Stop
// (from a deadline timer, a context watcher, or a signal handler); the
// solver polls Stopped at propagation-count intervals and abandons the
// search with an Unknown result. The zero value is ready to use, a nil
// *StopFlag never reports stopped, and all methods are safe for
// concurrent use.
type StopFlag struct {
	stopped atomic.Bool
}

// Stop requests that any solver sharing the flag abandon its search.
func (f *StopFlag) Stop() {
	if f != nil {
		f.stopped.Store(true)
	}
}

// Stopped reports whether Stop has been called.
func (f *StopFlag) Stopped() bool {
	return f != nil && f.stopped.Load()
}

// stopPollInterval is the number of propagations between polls of the
// stop flag: frequent enough that even pathological instances notice a
// deadline within microseconds, rare enough that the atomic load never
// shows up in a profile.
const stopPollInterval = 2048
