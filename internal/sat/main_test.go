package sat

import (
	"os"
	"testing"

	"alive/internal/leakcheck"
)

// TestMain fails the package if any solver goroutine leaks past the
// tests (stop-flag flippers in the inprocessing soundness tests
// included).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
