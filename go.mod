module alive

go 1.22
